"""Command-line interface: fact attribution for a query over CSV relations.

Lets a user run the library without writing Python::

    python -m repro --facts R=r.csv --facts S=s.csv --exogenous S \\
        --query "Q(X) :- R(X, Y), S(Y, Z)" --method auto --top 5

The default method is ``exact`` (ExaBan); ``--method auto`` as above adds
the AdaBan fallback.  Each ``--facts NAME=PATH`` loads one relation from a
headerless CSV file (one fact per row; every value is kept as a string
unless it parses as an integer).  Relations listed with ``--exogenous`` are
loaded as exogenous facts; all others are endogenous and receive
attribution scores.

Ranking instead of scoring (IchiBan): ``--rank`` prints every answer's
facts in Banzhaf order with certified intervals, ``--top-k K`` only the
top K.

The CLI runs on the batched attribution engine: repeatable ``--query``
attributes several queries in one process (sharing the lineage cache),
``--jobs N`` fans independent answers out over N worker processes (capped
at the machine's core count), and ``--stats`` prints the engine's
cache/timing counters afterwards.

Two subcommands expose the persistent cache tier and the serving loop
(both leave the flag-style attribution interface above untouched)::

    python -m repro serve --facts R=r.csv --requests requests.jsonl \\
        --store /var/cache/repro --store-backend log --stats
    python -m repro cache save --store DIR --facts ... --query ...
    python -m repro cache load --store DIR
    python -m repro cache warm --store DIR --store-backend log
    python -m repro cache compact --store DIR --store-backend log
    python -m repro cache migrate --store SRC --dest DST --dest-backend log
    python -m repro cache stats --store DIR

``serve`` drives an :class:`repro.engine.serve.AttributionService` from a
JSON Lines request file (one ``{"op": "attribute"|"rank"|"topk", "query":
...}`` object per line; ``-`` reads stdin), printing one JSON response
per line; ``--store DIR`` adds the on-disk cache tier and ``--warm-start``
preloads it into memory.  ``--workers N`` (N >= 2) serves through the
concurrent front-end (:mod:`repro.engine.frontend`) -- worker threads,
in-flight coalescing of isomorphic computations (``--no-coalesce``
disables), micro-batching (``--batch-max``), a bounded admission queue
(``--max-queue``), and a default per-request deadline (``--deadline-ms``)
under which late requests degrade to best-effort partials -- while
keeping responses in input order.  Every store-taking command accepts
``--store-backend {disk,log}`` (``disk`` is the legacy sharded-JSON
tier; ``log`` the append-only record log of
:mod:`repro.engine.logstore`, with point reads, single-writer locking
and compaction) and ``--store-shards N`` (consistent-hash sharding
across N roots).  ``cache save`` computes the given queries and
persists the resulting cache entries -- results *and* compiled-lineage
artifacts, so a later process skips recompilation too -- for warm
starts; ``cache load`` verifies a store by loading it into a fresh
engine; ``cache warm`` times that load (the restart cost a serving
process will pay); ``cache compact`` reclaims a log-backed store's
superseded records; ``cache migrate`` copies one store into another
(the one-shot ``disk`` -> ``log`` migration path); ``cache stats``
prints the store's per-kind (results vs compiled trees)
entry/shard/size summary.

A store that cannot be opened -- another process holds the log-backend
writer lock (:class:`StoreLockedError`) or the directory is unreadable
-- makes ``serve`` and every ``cache`` action print one structured
``{"ok": false, "error": ..., "store": ...}`` JSON line instead of a
traceback and exit with code 2, so supervisors can branch on the
failure.  ``serve`` additionally takes ``--store-retries`` and
``--breaker-threshold``, the retry/circuit-breaker knobs of the store
resilience wrapper (:mod:`repro.reliability`).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from typing import Iterable, List, Sequence, Tuple

from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.dtree.kernels import HAVE_NUMPY
from repro.engine import Engine, EngineConfig
from repro.engine.frontend import FrontendConfig, serve_jsonl_concurrent
from repro.engine.logstore import (
    STORE_BACKENDS,
    StoreLockedError,
    migrate_store,
    open_store,
)
from repro.engine.serve import AttributionService, serve_jsonl


def _coerce(value: str) -> object:
    text = value.strip()
    try:
        return int(text)
    except ValueError:
        return text


def _load_relation(database: Database, name: str, path: str,
                   endogenous: bool) -> int:
    count = 0
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.reader(handle):
            if not row or all(not cell.strip() for cell in row):
                continue
            database.add_fact(name, [_coerce(cell) for cell in row],
                              endogenous=endogenous)
            count += 1
    return count


def _parse_facts_argument(argument: str) -> Tuple[str, str]:
    if "=" not in argument:
        raise argparse.ArgumentTypeError(
            f"--facts expects NAME=PATH, got {argument!r}"
        )
    name, path = argument.split("=", 1)
    if not name or not path:
        raise argparse.ArgumentTypeError(
            f"--facts expects NAME=PATH, got {argument!r}"
        )
    return name, path


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Banzhaf-value attribution of database facts to query answers.",
        epilog="Subcommands (each has its own --help): 'repro serve "
               "--requests FILE' answers a JSONL request stream from warm "
               "cache tiers; 'repro cache save|load|stats --store DIR' "
               "manages the persistent warm-start cache.",
    )
    _add_database_arguments(parser)
    parser.add_argument("--query", action="append", required=True,
                        metavar="QUERY",
                        help="Datalog-style query, e.g. \"Q(X) :- R(X, Y)\" "
                             "(repeatable; queries share the lineage cache)")
    parser.add_argument("--method",
                        choices=("auto", "exact", "approximate", "shapley"),
                        default=None,
                        help="attribution method (default: exact; auto = "
                             "exact with approximate fallback)")
    parser.add_argument("--epsilon", type=float, default=None,
                        metavar="EPS",
                        help="relative error for the approximate method, "
                             "the auto fallback and ranking (default: 0.1; "
                             "ignored, with a warning, for exact/shapley)")
    parser.add_argument("--rank", action="store_true",
                        help="rank every answer's facts by Banzhaf value "
                             "with certified intervals (IchiBan) instead "
                             "of printing attribution scores")
    parser.add_argument("--top-k", dest="top_k", type=int, default=None,
                        metavar="K",
                        help="print only the top-K facts per answer, "
                             "decided by IchiBan's top-k-aware refinement")
    parser.add_argument("--top", type=int, default=0,
                        help="print only the top-K facts per answer "
                             "(0 = all; trims the output, unlike --top-k "
                             "which changes the algorithm)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for independent answers "
                             "(0 or 1 = serial)")
    parser.add_argument("--stats", action="store_true",
                        help="print engine statistics (cache hits, "
                             "compilations, stage timings) after the results")
    return parser


def _validate(parser: argparse.ArgumentParser, arguments) -> None:
    """Reject inconsistent flag combinations instead of silently ignoring."""
    if not arguments.facts:
        parser.error("at least one --facts NAME=PATH is required")
    if arguments.top < 0:
        parser.error("--top must be non-negative (0 prints all facts)")
    if arguments.top_k is not None and arguments.top_k < 1:
        parser.error("--top-k must be at least 1")
    if arguments.rank and arguments.top_k is not None:
        parser.error("--rank and --top-k are mutually exclusive")
    if (arguments.rank or arguments.top_k is not None) \
            and arguments.method is not None:
        parser.error("--method cannot be combined with --rank/--top-k "
                     "(they select the IchiBan ranking method)")
    if (arguments.rank or arguments.top_k is not None) and arguments.top:
        parser.error("--top cannot be combined with --rank/--top-k "
                     "(use --top-k to bound a ranking)")


def run(argv: Sequence[str], output=None) -> int:
    """Run the CLI; returns a process exit code.

    ``argv[0] == "serve"`` / ``"cache"`` dispatch to the subcommands;
    anything else is the flag-style attribution interface.
    """
    stream = output if output is not None else sys.stdout
    argv = list(argv)
    if argv and argv[0] == "serve":
        return _serve_command(argv[1:], stream)
    if argv and argv[0] == "cache":
        return _cache_command(argv[1:], stream)
    parser = build_parser()
    arguments = parser.parse_args(list(argv))
    _validate(parser, arguments)
    ranking = arguments.rank or arguments.top_k is not None
    method = arguments.method if arguments.method is not None else "exact"
    epsilon = arguments.epsilon if arguments.epsilon is not None else 0.1
    if (arguments.epsilon is not None and not ranking
            and method in ("exact", "shapley")):
        print(f"warning: --epsilon is ignored for method {method!r} "
              "(it only affects approximate, the auto fallback, and "
              "ranking)", file=stream)

    database = _build_database(arguments.facts, arguments.exogenous, stream)

    queries = [parse_query(text) for text in arguments.query]
    if ranking:
        engine = Engine(EngineConfig(
            method="topk" if arguments.top_k is not None else "rank",
            epsilon=epsilon, k=arguments.top_k,
            max_workers=arguments.jobs))
        all_answered = _run_ranking(engine, queries, database, stream)
    else:
        engine = Engine(EngineConfig(method=method, epsilon=epsilon,
                                     max_workers=arguments.jobs))
        all_answered = _run_attribution(engine, queries, database,
                                        arguments.top, stream)

    if arguments.stats:
        print("\nengine stats:", file=stream)
        print(json.dumps(engine.stats.as_dict(), indent=2), file=stream)
    # Exit 0 only when every query produced answers, extending the
    # single-query contract (exit 1 on an unanswered query) to batches.
    return 0 if all_answered else 1


def _run_attribution(engine: Engine, queries, database, top: int,
                     stream) -> bool:
    all_answered = True
    for query, results in engine.attribute_many(queries, database):
        if len(queries) > 1:
            print(f"\n== query {query} ==", file=stream)
        if not results:
            print("the query has no answers with endogenous support",
                  file=stream)
            all_answered = False
            continue
        for result in results:
            answer = result.answer if result.answer else "(true)"
            print(f"\nanswer {answer}:", file=stream)
            attributions: Iterable = result.attributions
            if top > 0:
                attributions = result.top(top)
            for attribution in attributions:
                print(f"  {attribution}", file=stream)
    return all_answered


def _run_ranking(engine: Engine, queries, database, stream) -> bool:
    all_answered = True
    for query, rankings in engine.rank_many(queries, database):
        if len(queries) > 1:
            print(f"\n== query {query} ==", file=stream)
        if not rankings:
            print("the query has no answers with endogenous support",
                  file=stream)
            all_answered = False
            continue
        for answer_values, entries in rankings:
            answer = answer_values if answer_values else "(true)"
            print(f"\nanswer {answer}:", file=stream)
            for position, (fact, entry) in enumerate(entries, 1):
                print(f"  {position}. {fact}: "
                      f"{float(entry.estimate):.6g} "
                      f"in [{entry.lower}, {entry.upper}]", file=stream)
    return all_answered


def _build_database(facts: Sequence[Tuple[str, str]],
                    exogenous_names: Sequence[str], stream) -> Database:
    """Load every ``--facts`` relation into a fresh database."""
    exogenous = set(exogenous_names)
    database = Database()
    for name, path in facts:
        loaded = _load_relation(database, name, path,
                                endogenous=name not in exogenous)
        print(f"loaded {loaded} facts into {name}"
              f"{' (exogenous)' if name in exogenous else ''}", file=stream)
    return database


# --------------------------------------------------------------------- #
# The serve and cache subcommands
# --------------------------------------------------------------------- #


def _add_database_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--facts", action="append", default=[],
                        type=_parse_facts_argument, metavar="NAME=PATH",
                        help="load a relation from a headerless CSV file "
                             "(repeatable)")
    parser.add_argument("--exogenous", action="append", default=[],
                        metavar="NAME",
                        help="treat this relation's facts as exogenous "
                             "(repeatable)")


def _add_store_argument(parser: argparse.ArgumentParser,
                        required: bool, prefix: str = "store") -> None:
    """Add one store's flag group (``--store``/``--dest`` + knobs)."""
    flag = f"--{prefix}"
    parser.add_argument(flag, required=required, default=None,
                        metavar="DIR",
                        help="directory of the persistent (sharded, "
                             "versioned) result store")
    parser.add_argument(f"{flag}-entries", type=int, default=65_536,
                        metavar="N",
                        help="store capacity in entries; oldest entries "
                             "are evicted past it (default: 65536)")
    parser.add_argument(f"{flag}-backend", choices=STORE_BACKENDS,
                        default="disk",
                        help="store backend: 'disk' (legacy sharded JSON) "
                             "or 'log' (append-only record log with point "
                             "reads, single-writer locking and "
                             "compaction; default: disk)")
    parser.add_argument(f"{flag}-shards", type=int, default=1, metavar="N",
                        help="consistent-hash shard the store across N "
                             "roots under DIR (default: 1, a single root)")


def _open_store(arguments, prefix: str = "store",
                shared_reader: bool = False):
    """Open the store named by one flag group via the backend factory.

    ``shared_reader`` opens a log-backed store in ``auto`` mode, so
    read-mostly commands (stats, warm) keep working while a serving
    process holds the writer lock.
    """
    kwargs = {}
    if getattr(arguments, f"{prefix}_backend") == "log" and shared_reader:
        kwargs["mode"] = "auto"
    return open_store(getattr(arguments, prefix),
                      backend=getattr(arguments, f"{prefix}_backend"),
                      shards=getattr(arguments, f"{prefix}_shards"),
                      max_entries=getattr(arguments, f"{prefix}_entries"),
                      **kwargs)


# A store that cannot be opened (held writer lock, missing/unreadable
# directory) is an operational condition, not a bug: the commands report
# it as one structured JSON line and exit with code 2 instead of a
# traceback, so wrappers and supervisors can branch on it.
_STORE_OPEN_ERRORS = (StoreLockedError, OSError)


def _open_store_checked(arguments, error_stream, prefix: str = "store",
                        shared_reader: bool = False):
    """Open one flag group's store, degrading failures to a status line.

    Returns the opened store, or ``None`` after printing one
    machine-readable ``{"ok": false, ...}`` line to ``error_stream``
    (callers translate ``None`` into exit code 2).
    """
    try:
        return _open_store(arguments, prefix=prefix,
                           shared_reader=shared_reader)
    except _STORE_OPEN_ERRORS as error:
        print(json.dumps({"ok": False,
                          "error": f"{type(error).__name__}: {error}",
                          "store": getattr(arguments, prefix)}),
              file=error_stream)
        return None


def _serve_command(argv: Sequence[str], stream, log=None) -> int:
    """``repro serve``: drive an AttributionService from a JSONL file.

    Responses go to ``stream`` (stdout) -- strictly one JSON object per
    line, so the output pipes into JSONL consumers; every diagnostic
    (facts loaded, warm-start report, ``--stats``) goes to ``log``
    (stderr by default).
    """
    log = log if log is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived serving loop: answer a stream of "
                    "attribute/rank/topk requests from warm cache tiers.",
    )
    _add_database_arguments(parser)
    parser.add_argument("--requests", required=True, metavar="FILE",
                        help="JSON Lines request file, one "
                             "{\"op\": ..., \"query\": ...} object per "
                             "line ('-' reads stdin)")
    _add_store_argument(parser, required=False)
    parser.add_argument("--store-retries", type=int, default=2, metavar="N",
                        help="retry a failing store read/flush up to N "
                             "extra times with exponential backoff before "
                             "degrading to a cache miss (default: 2; "
                             "0 disables the resilience wrapper)")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        metavar="N",
                        help="consecutive store failures that trip the "
                             "circuit breaker into memory-only serving "
                             "until a half-open probe succeeds "
                             "(default: 5; 0 disables the breaker)")
    parser.add_argument("--method",
                        choices=("auto", "exact", "approximate", "shapley"),
                        default="auto",
                        help="default method for 'attribute' requests "
                             "(default: auto)")
    parser.add_argument("--epsilon", type=float, default=0.1, metavar="EPS",
                        help="relative error for approximate/auto-fallback/"
                             "ranking requests (default: 0.1)")
    parser.add_argument("--warm-start", action="store_true",
                        help="preload the store into the in-memory tier "
                             "before serving (needs --store)")
    parser.add_argument("--stats", action="store_true",
                        help="print the service's tier hit rates and "
                             "engine counters after the stream")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker threads; 2 or more serve through the "
                             "concurrent front-end with in-flight "
                             "coalescing and micro-batching (default: 1, "
                             "the plain serial loop)")
    parser.add_argument("--max-queue", type=int, default=64, metavar="N",
                        help="admission-queue bound of the concurrent "
                             "front-end (default: 64; needs --workers >= 2)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS",
                        help="default per-request deadline: requests "
                             "missing it degrade to best-effort partial "
                             "answers (needs --workers >= 2; a request's "
                             "own deadline_ms field overrides it)")
    parser.add_argument("--batch-max", type=int, default=8, metavar="N",
                        help="micro-batch bound of the concurrent "
                             "front-end; 1 disables batching (default: 8; "
                             "needs --workers >= 2)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable in-flight coalescing of isomorphic "
                             "computations (needs --workers >= 2)")
    parser.add_argument("--kernel", choices=("auto", "numpy", "python"),
                        default="auto",
                        help="arena evaluation backend: 'auto' vectorizes "
                             "fused passes over numpy when available and "
                             "worthwhile, 'numpy' forces it (errors "
                             "without numpy), 'python' pins the "
                             "pure-Python passes (default: auto)")
    arguments = parser.parse_args(list(argv))
    if not arguments.facts:
        parser.error("at least one --facts NAME=PATH is required")
    if arguments.warm_start and arguments.store is None:
        parser.error("--warm-start needs --store")
    if arguments.workers < 1:
        parser.error("--workers must be at least 1")
    if arguments.kernel == "numpy" and not HAVE_NUMPY:
        parser.error("--kernel numpy requires numpy "
                     "(pip install repro[fast]); use --kernel auto for "
                     "best-available")
    if arguments.workers == 1:
        for flag, given in (("--deadline-ms",
                             arguments.deadline_ms is not None),
                            ("--no-coalesce", arguments.no_coalesce)):
            if given:
                parser.error(f"{flag} needs the concurrent front-end: "
                             "pass --workers 2 or more")
    if arguments.store_retries < 0:
        parser.error("--store-retries must be non-negative")
    if arguments.breaker_threshold < 0:
        parser.error("--breaker-threshold must be non-negative")

    database = _build_database(arguments.facts, arguments.exogenous, log)
    if arguments.store is not None:
        store = _open_store_checked(arguments, log)
        if store is None:
            return 2
    else:
        store = None
    service = AttributionService(
        database,
        EngineConfig(method=arguments.method, epsilon=arguments.epsilon,
                     kernel=arguments.kernel,
                     store_retries=arguments.store_retries,
                     breaker_threshold=arguments.breaker_threshold),
        store=store,
        warm_start=arguments.warm_start,
    )
    if arguments.warm_start:
        print(f"warm start: {service.warm_loaded} entries loaded into "
              "memory", file=log)

    if arguments.workers > 1:
        frontend_config = FrontendConfig(
            workers=arguments.workers,
            max_queue=arguments.max_queue,
            batch_max=arguments.batch_max,
            coalesce=not arguments.no_coalesce,
            deadline_ms=arguments.deadline_ms,
        )

        def _serve(lines):
            return serve_jsonl_concurrent(service, lines, stream,
                                          frontend_config)
    else:
        def _serve(lines):
            return serve_jsonl(service, lines, stream)

    if arguments.requests == "-":
        all_ok = _serve(sys.stdin)
    else:
        with open(arguments.requests, "r", encoding="utf-8") as handle:
            all_ok = _serve(handle)

    if arguments.stats:
        print("\nservice stats:", file=log)
        print(json.dumps(service.stats(), indent=2), file=log)
    if store is not None and hasattr(store, "close"):
        store.close()  # flush, stop the compactor, release the writer lock
    return 0 if all_ok else 1


def _cache_command(argv: Sequence[str], stream) -> int:
    """``repro cache save|load|stats``: explicit warm-start management."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Manage the persistent result store used for "
                    "warm-starting engines and services.",
    )
    actions = parser.add_subparsers(dest="action")

    save = actions.add_parser(
        "save", help="compute the given queries and persist the resulting "
                     "cache entries")
    _add_database_arguments(save)
    save.add_argument("--query", action="append", required=True,
                      metavar="QUERY",
                      help="Datalog-style query to precompute (repeatable)")
    _add_store_argument(save, required=True)
    save.add_argument("--method",
                      choices=("auto", "exact", "approximate", "shapley",
                               "rank", "topk"),
                      default="exact",
                      help="method whose results to precompute "
                           "(default: exact)")
    save.add_argument("--epsilon", type=float, default=0.1, metavar="EPS",
                      help="epsilon for approximate/auto/ranking entries")
    save.add_argument("--k", type=int, default=None,
                      help="top-k size (required for --method topk)")

    load = actions.add_parser(
        "load", help="verify a store by loading it into a fresh engine")
    _add_store_argument(load, required=True)

    warm = actions.add_parser(
        "warm", help="time a full warm-start load of the store (results "
                     "and artifacts into fresh memory tiers) -- the "
                     "restart cost a serving process will pay")
    _add_store_argument(warm, required=True)

    compact = actions.add_parser(
        "compact", help="rewrite a log-backed store's live records and "
                        "drop tombstoned/superseded ones, reclaiming "
                        "disk space")
    _add_store_argument(compact, required=True)

    migrate = actions.add_parser(
        "migrate", help="copy every result and artifact from one store "
                        "into another (one-shot backend migration, e.g. "
                        "disk -> log); the source is left untouched")
    _add_store_argument(migrate, required=True)
    _add_store_argument(migrate, required=True, prefix="dest")

    stats = actions.add_parser(
        "stats", help="print the store's per-kind (results vs compiled "
                      "trees) entry/shard/size summary")
    _add_store_argument(stats, required=True)

    arguments = parser.parse_args(list(argv))
    if arguments.action is None:
        parser.error("an action is required: save, load, warm, compact, "
                     "migrate or stats")

    if arguments.action == "stats":
        store = _open_store_checked(arguments, stream, shared_reader=True)
        if store is None:
            return 2
        print(json.dumps(store.stats(), indent=2), file=stream)
        return 0

    if arguments.action == "load":
        store = _open_store_checked(arguments, stream)
        if store is None:
            return 2
        engine = Engine(EngineConfig())
        loaded = engine.load_cache(store)
        # Report the store's true artifact count, not the (LRU-capped)
        # number that fit in the fresh engine's memory tier.
        artifacts = store.artifact_count()
        print(f"loaded {loaded} cache entries and {artifacts} compiled "
              f"artifacts from {arguments.store}", file=stream)
        return 0

    if arguments.action == "warm":
        store = _open_store_checked(arguments, stream, shared_reader=True)
        if store is None:
            return 2
        engine = Engine(EngineConfig())
        started = time.perf_counter()
        loaded = engine.load_cache(store)
        elapsed = time.perf_counter() - started
        artifacts = store.artifact_count()
        print(f"warmed {loaded} cache entries and {artifacts} compiled "
              f"artifacts from {arguments.store} in {elapsed:.3f}s",
              file=stream)
        return 0

    if arguments.action == "compact":
        store = _open_store_checked(arguments, stream)
        if store is None:
            return 2
        if not hasattr(store, "compact"):
            print(f"store backend {arguments.store_backend!r} does not "
                  "support compaction (its flush already rewrites "
                  "in place); use --store-backend log", file=stream)
            return 2
        before = store.stats().get("disk_bytes", 0)
        reclaimed = store.compact()
        after = store.stats().get("disk_bytes", 0)
        store.close()
        print(f"compacted {arguments.store}: reclaimed {reclaimed} bytes "
              f"({before} -> {after} on disk)", file=stream)
        return 0

    if arguments.action == "migrate":
        source = _open_store_checked(arguments, stream, shared_reader=True)
        if source is None:
            return 2
        destination = _open_store_checked(arguments, stream, prefix="dest")
        if destination is None:
            if hasattr(source, "close"):
                source.close()
            return 2
        results, artifacts = migrate_store(source, destination)
        for store in (source, destination):
            if hasattr(store, "close"):
                store.close()
        print(f"migrated {results} cache entries and {artifacts} compiled "
              f"artifacts from {arguments.store} "
              f"({arguments.store_backend}) to {arguments.dest} "
              f"({arguments.dest_backend})", file=stream)
        return 0

    # save: compute the queries with a memory-only engine, then persist.
    if arguments.method == "topk" and (arguments.k is None
                                       or arguments.k < 1):
        parser.error("--method topk needs --k >= 1")
    if arguments.method != "topk" and arguments.k is not None:
        parser.error("--k is only meaningful with --method topk")
    if not arguments.facts:
        parser.error("at least one --facts NAME=PATH is required")
    database = _build_database(arguments.facts, arguments.exogenous, stream)
    queries = [parse_query(text) for text in arguments.query]
    engine = Engine(EngineConfig(method=arguments.method,
                                 epsilon=arguments.epsilon,
                                 k=arguments.k))
    if arguments.method in ("rank", "topk"):
        for _query, _rankings in engine.rank_many(queries, database):
            pass
    else:
        for _query, _results in engine.attribute_many(queries, database):
            pass
    store = _open_store_checked(arguments, stream)
    if store is None:
        return 2
    written = engine.save_cache(store)
    artifacts = store.stats()["kinds"]["compiled_trees"]["entries"]
    if hasattr(store, "close"):
        store.close()
    print(f"saved {written} cache entries and {artifacts} compiled "
          f"artifacts to {arguments.store} "
          f"({engine.stats.compilations} computed, "
          f"{engine.stats.cache_hits} served from memory)", file=stream)
    return 0


def main(argv: List[str] | None = None) -> int:
    """Console entry point."""
    return run(sys.argv[1:] if argv is None else argv)


if __name__ == "__main__":
    sys.exit(main())
