"""Command-line interface: fact attribution for a query over CSV relations.

Lets a user run the library without writing Python::

    python -m repro --facts R=r.csv --facts S=s.csv --exogenous S \\
        --query "Q(X) :- R(X, Y), S(Y, Z)" --method auto --top 5

Each ``--facts NAME=PATH`` loads one relation from a headerless CSV file (one
fact per row; every value is kept as a string unless it parses as an
integer).  Relations listed with ``--exogenous`` are loaded as exogenous
facts; all others are endogenous and receive attribution scores.

The CLI runs on the batched attribution engine: repeatable ``--query``
attributes several queries in one process (sharing the lineage cache),
``--jobs N`` fans independent answers out over N worker processes, and
``--stats`` prints the engine's cache/timing counters afterwards.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Iterable, List, Sequence, Tuple

from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.engine import Engine, EngineConfig


def _coerce(value: str) -> object:
    text = value.strip()
    try:
        return int(text)
    except ValueError:
        return text


def _load_relation(database: Database, name: str, path: str,
                   endogenous: bool) -> int:
    count = 0
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.reader(handle):
            if not row or all(not cell.strip() for cell in row):
                continue
            database.add_fact(name, [_coerce(cell) for cell in row],
                              endogenous=endogenous)
            count += 1
    return count


def _parse_facts_argument(argument: str) -> Tuple[str, str]:
    if "=" not in argument:
        raise argparse.ArgumentTypeError(
            f"--facts expects NAME=PATH, got {argument!r}"
        )
    name, path = argument.split("=", 1)
    if not name or not path:
        raise argparse.ArgumentTypeError(
            f"--facts expects NAME=PATH, got {argument!r}"
        )
    return name, path


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Banzhaf-value attribution of database facts to query answers.",
    )
    parser.add_argument("--facts", action="append", default=[],
                        type=_parse_facts_argument, metavar="NAME=PATH",
                        help="load a relation from a headerless CSV file "
                             "(repeatable)")
    parser.add_argument("--exogenous", action="append", default=[],
                        metavar="NAME",
                        help="treat this relation's facts as exogenous "
                             "(repeatable)")
    parser.add_argument("--query", action="append", required=True,
                        metavar="QUERY",
                        help="Datalog-style query, e.g. \"Q(X) :- R(X, Y)\" "
                             "(repeatable; queries share the lineage cache)")
    parser.add_argument("--method",
                        choices=("auto", "exact", "approximate", "shapley"),
                        default="exact",
                        help="attribution method (auto = exact with "
                             "approximate fallback)")
    parser.add_argument("--epsilon", type=float, default=0.1,
                        help="relative error for the approximate method")
    parser.add_argument("--top", type=int, default=0,
                        help="print only the top-K facts per answer (0 = all)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for independent answers "
                             "(0 or 1 = serial)")
    parser.add_argument("--stats", action="store_true",
                        help="print engine statistics (cache hits, "
                             "compilations, stage timings) after the results")
    return parser


def run(argv: Sequence[str], output=None) -> int:
    """Run the CLI; returns a process exit code."""
    stream = output if output is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(list(argv))
    if not arguments.facts:
        parser.error("at least one --facts NAME=PATH is required")

    exogenous = set(arguments.exogenous)
    database = Database()
    for name, path in arguments.facts:
        loaded = _load_relation(database, name, path,
                                endogenous=name not in exogenous)
        print(f"loaded {loaded} facts into {name}"
              f"{' (exogenous)' if name in exogenous else ''}", file=stream)

    queries = [parse_query(text) for text in arguments.query]
    engine = Engine(EngineConfig(method=arguments.method,
                                 epsilon=arguments.epsilon,
                                 max_workers=arguments.jobs))
    all_answered = True
    for query, results in engine.attribute_many(queries, database):
        if len(queries) > 1:
            print(f"\n== query {query} ==", file=stream)
        if not results:
            print("the query has no answers with endogenous support",
                  file=stream)
            all_answered = False
            continue
        for result in results:
            answer = result.answer if result.answer else "(true)"
            print(f"\nanswer {answer}:", file=stream)
            attributions: Iterable = result.attributions
            if arguments.top > 0:
                attributions = result.top(arguments.top)
            for attribution in attributions:
                print(f"  {attribution}", file=stream)

    if arguments.stats:
        print("\nengine stats:", file=stream)
        print(json.dumps(engine.stats.as_dict(), indent=2), file=stream)
    # Exit 0 only when every query produced answers, extending the
    # single-query contract (exit 1 on an unanswered query) to batches.
    return 0 if all_answered else 1


def main(argv: List[str] | None = None) -> int:
    """Console entry point."""
    return run(sys.argv[1:] if argv is None else argv)


if __name__ == "__main__":
    sys.exit(main())
