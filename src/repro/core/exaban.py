"""ExaBan: exact Banzhaf values over complete d-trees (Fig. 1 of the paper).

The algorithm is a bottom-up evaluation of the d-tree.  At each node it
maintains the pair ``(Banzhaf(phi, x), #phi)`` for the function ``phi``
represented by the subtree, combining children with Eq. (4)-(9):

* independent AND (``⊙``): counts multiply; the Banzhaf value of the child
  containing ``x`` is scaled by the product of the other children's counts;
* independent OR (``⊗``): *non*-model counts multiply; the Banzhaf value of
  the child containing ``x`` is scaled by the product of the other children's
  non-model counts;
* exclusive OR (``⊕``): counts and Banzhaf values add.

``exaban_all`` computes the Banzhaf values of *all* variables in two linear
passes (one bottom-up for counts, one top-down for per-leaf multipliers),
which is how the paper's prototype shares work across variables.

Both passes are **iterative** (explicit stacks): arbitrarily deep Shannon
chains never hit the interpreter recursion limit.  The bottom-up count pass
takes an optional ``counts`` memo keyed by node id -- pass the same dict
across calls (the engine shares it through
:class:`repro.engine.artifact.CompiledLineage`) and already-counted
subtrees are skipped entirely, so ranking / top-k / Shapley / repeat
attribution over one compiled artifact never recount a subtree.  Sibling
products in the top-down pass use prefix/suffix products, so wide
decomposable nodes cost O(children), not O(children^2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


class IncompleteDTreeError(Exception):
    """Raised when an exact computation is attempted on a partial d-tree."""


#: Node-id -> exact model count of the subtree.  Valid only while the tree
#: object is alive and unmutated; complete compiled artifacts guarantee both.
CountMemo = Dict[int, int]


def _count_subtree(root: DTreeNode, counts: CountMemo) -> None:
    """Fill ``counts`` with the model count of every node under ``root``.

    Iterative postorder; subtrees whose root is already in the memo are
    skipped without descending into them.
    """
    pending: List[DTreeNode] = [root]
    postorder: List[DTreeNode] = []
    while pending:
        node = pending.pop()
        if id(node) in counts:
            continue
        postorder.append(node)
        pending.extend(node.children())
    for node in reversed(postorder):
        key = id(node)
        if key in counts:
            continue
        if isinstance(node, TrueLeaf):
            value = 1 << len(node.domain)
        elif isinstance(node, FalseLeaf):
            value = 0
        elif isinstance(node, LiteralLeaf):
            value = 1
        elif isinstance(node, DNFLeaf):
            raise IncompleteDTreeError(
                "exact counting requires a complete d-tree; found an "
                "undecomposed leaf"
            )
        elif isinstance(node, DecompAnd):
            value = 1
            for child in node.children():
                value *= counts[id(child)]
        elif isinstance(node, DecompOr):
            non_models = 1
            for child in node.children():
                non_models *= (1 << len(child.domain)) - counts[id(child)]
            value = (1 << len(node.domain)) - non_models
        elif isinstance(node, ExclusiveOr):
            value = sum(counts[id(child)] for child in node.children())
        else:
            raise TypeError(f"unknown d-tree node type {type(node).__name__}")
        counts[key] = value


def model_count(node: DTreeNode, counts: Optional[CountMemo] = None) -> int:
    """Exact model count ``#phi`` of the function represented by ``node``.

    Requires a complete d-tree (no :class:`DNFLeaf` leaves).  ``counts``
    is an optional shared memo (node id -> count): subtrees counted by an
    earlier call through the same memo are not revisited.
    """
    memo: CountMemo = counts if counts is not None else {}
    _count_subtree(node, memo)
    return memo[id(node)]


def _sibling_products(values: List[int]) -> List[int]:
    """For each index, the product of all *other* entries (prefix/suffix)."""
    size = len(values)
    prefix = [1] * (size + 1)
    for index, value in enumerate(values):
        prefix[index + 1] = prefix[index] * value
    others = [0] * size
    suffix = 1
    for index in range(size - 1, -1, -1):
        others[index] = prefix[index] * suffix
        suffix *= values[index]
    return others


def _push_multipliers(root: DTreeNode, counts: CountMemo,
                      banzhaf: Dict[int, int]) -> None:
    """Top-down multiplier pass accumulating signed multipliers per literal."""
    stack: List[Tuple[DTreeNode, int]] = [(root, 1)]
    while stack:
        node, multiplier = stack.pop()
        if multiplier == 0:
            continue
        if isinstance(node, LiteralLeaf):
            sign = -1 if node.negated else 1
            banzhaf[node.variable] += sign * multiplier
            continue
        if isinstance(node, (TrueLeaf, FalseLeaf)):
            continue
        children = node.children()
        if isinstance(node, DecompAnd):
            child_counts = [counts[id(child)] for child in children]
            for child, others in zip(children,
                                     _sibling_products(child_counts)):
                stack.append((child, multiplier * others))
        elif isinstance(node, DecompOr):
            non_models = [
                (1 << len(child.domain)) - counts[id(child)]
                for child in children
            ]
            for child, others in zip(children, _sibling_products(non_models)):
                stack.append((child, multiplier * others))
        elif isinstance(node, ExclusiveOr):
            for child in children:
                stack.append((child, multiplier))
        else:
            raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def exaban(node: DTreeNode, variable: int,
           counts: Optional[CountMemo] = None) -> Tuple[int, int]:
    """Exact ``(Banzhaf(phi, x), #phi)`` for one variable (Fig. 1).

    ``variable`` need not occur in the function; its Banzhaf value is then 0.
    Raises :class:`IncompleteDTreeError` on partial d-trees.  ``counts`` is
    the optional shared subtree-count memo (see :func:`model_count`).
    """
    memo: CountMemo = counts if counts is not None else {}
    _count_subtree(node, memo)
    banzhaf: Dict[int, int] = {variable: 0}

    # Restricted top-down pass: only the target variable's literal leaves
    # contribute, but the multiplier flow is the same as exaban_all's.
    stack: List[Tuple[DTreeNode, int]] = [(node, 1)]
    while stack:
        current, multiplier = stack.pop()
        if multiplier == 0 or variable not in current.domain:
            continue
        if isinstance(current, LiteralLeaf):
            if current.variable == variable:
                sign = -1 if current.negated else 1
                banzhaf[variable] += sign * multiplier
            continue
        if isinstance(current, (TrueLeaf, FalseLeaf)):
            continue
        children = current.children()
        if isinstance(current, DecompAnd):
            child_counts = [memo[id(child)] for child in children]
            for child, others in zip(children,
                                     _sibling_products(child_counts)):
                stack.append((child, multiplier * others))
        elif isinstance(current, DecompOr):
            non_models = [
                (1 << len(child.domain)) - memo[id(child)]
                for child in children
            ]
            for child, others in zip(children, _sibling_products(non_models)):
                stack.append((child, multiplier * others))
        elif isinstance(current, ExclusiveOr):
            for child in children:
                stack.append((child, multiplier))
        else:
            raise TypeError(
                f"unknown d-tree node type {type(current).__name__}")
    return banzhaf[variable], memo[id(node)]


def exaban_all(node: DTreeNode,
               counts: Optional[CountMemo] = None) -> Dict[int, int]:
    """Exact Banzhaf values of *all* domain variables in two passes.

    The bottom-up pass computes model counts; the top-down pass pushes a
    multiplier to every leaf (the product of sibling counts / non-model
    counts along the path), so that the Banzhaf value of a variable is the
    signed sum of the multipliers of its literal leaves.  Variables in the
    domain that never occur as literals get the Banzhaf value 0.

    ``counts`` is the optional shared subtree-count memo: when the engine
    evaluates several methods over one compiled artifact, the first pass
    fills it and every later pass (including :func:`model_count` and
    per-variable :func:`exaban` calls) reuses it.
    """
    memo: CountMemo = counts if counts is not None else {}
    _count_subtree(node, memo)
    banzhaf: Dict[int, int] = {var: 0 for var in node.domain}
    _push_multipliers(node, memo, banzhaf)
    return banzhaf
