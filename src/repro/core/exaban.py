"""ExaBan: exact Banzhaf values over complete d-trees (Fig. 1 of the paper).

The algorithm is a bottom-up evaluation of the d-tree.  At each node it
maintains the pair ``(Banzhaf(phi, x), #phi)`` for the function ``phi``
represented by the subtree, combining children with Eq. (4)-(9):

* independent AND (``⊙``): counts multiply; the Banzhaf value of the child
  containing ``x`` is scaled by the product of the other children's counts;
* independent OR (``⊗``): *non*-model counts multiply; the Banzhaf value of
  the child containing ``x`` is scaled by the product of the other children's
  non-model counts;
* exclusive OR (``⊕``): counts and Banzhaf values add.

``exaban_all`` computes the Banzhaf values of *all* variables in two linear
passes (one bottom-up for counts, one top-down for per-leaf multipliers),
which is how the paper's prototype shares work across variables.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


class IncompleteDTreeError(Exception):
    """Raised when an exact computation is attempted on a partial d-tree."""


def model_count(node: DTreeNode) -> int:
    """Exact model count ``#phi`` of the function represented by ``node``.

    Requires a complete d-tree (no :class:`DNFLeaf` leaves).
    """
    if isinstance(node, TrueLeaf):
        return 1 << len(node.domain)
    if isinstance(node, FalseLeaf):
        return 0
    if isinstance(node, LiteralLeaf):
        return 1
    if isinstance(node, DNFLeaf):
        raise IncompleteDTreeError(
            "model_count requires a complete d-tree; found an undecomposed leaf"
        )
    child_counts = [model_count(child) for child in node.children()]
    if isinstance(node, DecompAnd):
        product = 1
        for count in child_counts:
            product *= count
        return product
    if isinstance(node, DecompOr):
        non_models = 1
        for child, count in zip(node.children(), child_counts):
            non_models *= (1 << len(child.domain)) - count
        return (1 << len(node.domain)) - non_models
    if isinstance(node, ExclusiveOr):
        return sum(child_counts)
    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def exaban(node: DTreeNode, variable: int) -> Tuple[int, int]:
    """Exact ``(Banzhaf(phi, x), #phi)`` for one variable (Fig. 1).

    ``variable`` need not occur in the function; its Banzhaf value is then 0.
    Raises :class:`IncompleteDTreeError` on partial d-trees.
    """
    if isinstance(node, LiteralLeaf):
        if node.variable == variable:
            return (-1 if node.negated else 1), 1
        return 0, 1
    if isinstance(node, TrueLeaf):
        return 0, 1 << len(node.domain)
    if isinstance(node, FalseLeaf):
        return 0, 0
    if isinstance(node, DNFLeaf):
        raise IncompleteDTreeError(
            "exaban requires a complete d-tree; found an undecomposed leaf"
        )

    results = [exaban(child, variable) for child in node.children()]
    counts = [count for _, count in results]

    if isinstance(node, DecompAnd):
        total = 1
        for count in counts:
            total *= count
        banzhaf = 0
        for index, (child_banzhaf, _) in enumerate(results):
            if child_banzhaf:
                others = 1
                for j, count in enumerate(counts):
                    if j != index:
                        others *= count
                banzhaf += child_banzhaf * others
        return banzhaf, total

    if isinstance(node, DecompOr):
        non_models = [
            (1 << len(child.domain)) - count
            for child, count in zip(node.children(), counts)
        ]
        total_non = 1
        for value in non_models:
            total_non *= value
        total = (1 << len(node.domain)) - total_non
        banzhaf = 0
        for index, (child_banzhaf, _) in enumerate(results):
            if child_banzhaf:
                others = 1
                for j, value in enumerate(non_models):
                    if j != index:
                        others *= value
                banzhaf += child_banzhaf * others
        return banzhaf, total

    if isinstance(node, ExclusiveOr):
        banzhaf = sum(child_banzhaf for child_banzhaf, _ in results)
        total = sum(counts)
        return banzhaf, total

    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def exaban_all(node: DTreeNode) -> Dict[int, int]:
    """Exact Banzhaf values of *all* domain variables in two passes.

    The bottom-up pass computes model counts; the top-down pass pushes a
    multiplier to every leaf (the product of sibling counts / non-model
    counts along the path), so that the Banzhaf value of a variable is the
    signed sum of the multipliers of its literal leaves.  Variables in the
    domain that never occur as literals get the Banzhaf value 0.
    """
    counts: Dict[int, int] = {}

    def count_pass(current: DTreeNode) -> int:
        value = _node_count(current, counts)
        counts[id(current)] = value
        return value

    def _node_count(current: DTreeNode, memo: Dict[int, int]) -> int:
        if isinstance(current, TrueLeaf):
            return 1 << len(current.domain)
        if isinstance(current, FalseLeaf):
            return 0
        if isinstance(current, LiteralLeaf):
            return 1
        if isinstance(current, DNFLeaf):
            raise IncompleteDTreeError(
                "exaban_all requires a complete d-tree; found an undecomposed leaf"
            )
        child_counts = [count_pass(child) for child in current.children()]
        if isinstance(current, DecompAnd):
            product = 1
            for count in child_counts:
                product *= count
            return product
        if isinstance(current, DecompOr):
            non_models = 1
            for child, count in zip(current.children(), child_counts):
                non_models *= (1 << len(child.domain)) - count
            return (1 << len(current.domain)) - non_models
        if isinstance(current, ExclusiveOr):
            return sum(child_counts)
        raise TypeError(f"unknown d-tree node type {type(current).__name__}")

    count_pass(node)

    banzhaf: Dict[int, int] = {var: 0 for var in node.domain}

    def push(current: DTreeNode, multiplier: int) -> None:
        if multiplier == 0:
            return
        if isinstance(current, LiteralLeaf):
            sign = -1 if current.negated else 1
            banzhaf[current.variable] += sign * multiplier
            return
        if isinstance(current, (TrueLeaf, FalseLeaf)):
            return
        children = current.children()
        if isinstance(current, DecompAnd):
            for index, child in enumerate(children):
                others = 1
                for j, sibling in enumerate(children):
                    if j != index:
                        others *= counts[id(sibling)]
                push(child, multiplier * others)
            return
        if isinstance(current, DecompOr):
            non_models = [
                (1 << len(sibling.domain)) - counts[id(sibling)]
                for sibling in children
            ]
            for index, child in enumerate(children):
                others = 1
                for j, value in enumerate(non_models):
                    if j != index:
                        others *= value
                push(child, multiplier * others)
            return
        if isinstance(current, ExclusiveOr):
            for child in children:
                push(child, multiplier)
            return
        raise TypeError(f"unknown d-tree node type {type(current).__name__}")

    push(node, 1)
    return banzhaf
