"""ExaBan: exact Banzhaf values over complete d-trees (Fig. 1 of the paper).

The algorithm is a bottom-up evaluation of the d-tree.  At each node it
maintains the pair ``(Banzhaf(phi, x), #phi)`` for the function ``phi``
represented by the subtree, combining children with Eq. (4)-(9):

* independent AND (``⊙``): counts multiply; the Banzhaf value of the child
  containing ``x`` is scaled by the product of the other children's counts;
* independent OR (``⊗``): *non*-model counts multiply; the Banzhaf value of
  the child containing ``x`` is scaled by the product of the other children's
  non-model counts;
* exclusive OR (``⊕``): counts and Banzhaf values add.

``exaban_all`` computes the Banzhaf values of *all* variables in two linear
passes (one bottom-up for counts, one top-down for per-leaf multipliers),
which is how the paper's prototype shares work across variables.

The public entry points (:func:`model_count`, :func:`exaban`,
:func:`exaban_all`) run over the **arena** backend
(:mod:`repro.dtree.arena`): the tree is flattened once into
postorder-contiguous struct-of-arrays columns (cached in the root's
node cache, invalidated with it on mutation) and the passes become tight
index loops.  The original object-tree walks are kept verbatim as
:func:`model_count_objects` / :func:`exaban_all_objects` — they are the
PR 5 baseline that ``bench_arena.py`` measures against and that the
differential test suite cross-checks, and they remain fully supported
(arbitrarily deep Shannon chains never hit the recursion limit in either
backend).

The optional ``counts`` memo (node id -> subtree count) is still
honoured: the arena keeps counts in its ``"counts"`` payload column and
mirrors them into the caller's memo, so engine code that shares a memo
through :class:`repro.engine.artifact.CompiledLineage` keeps its
skip-recount behaviour and its cache-hit accounting.  Sibling products
in the top-down passes use prefix/suffix products, so wide decomposable
nodes cost O(children), not O(children^2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dtree.arena import (
    DTreeArena,
    IncompleteArenaError,
    arena_counts,
    arena_of,
)
from repro.dtree.kernels import banzhaf_pass, counts_pass
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


class IncompleteDTreeError(Exception):
    """Raised when an exact computation is attempted on a partial d-tree."""


#: Node-id -> exact model count of the subtree.  Valid only while the tree
#: object is alive and unmutated; complete compiled artifacts guarantee both.
CountMemo = Dict[int, int]


def _count_subtree(root: DTreeNode, counts: CountMemo) -> None:
    """Fill ``counts`` with the model count of every node under ``root``.

    Iterative postorder; subtrees whose root is already in the memo are
    skipped without descending into them.
    """
    pending: List[DTreeNode] = [root]
    postorder: List[DTreeNode] = []
    while pending:
        node = pending.pop()
        if id(node) in counts:
            continue
        postorder.append(node)
        pending.extend(node.children())
    for node in reversed(postorder):
        key = id(node)
        if key in counts:
            continue
        if isinstance(node, TrueLeaf):
            value = 1 << len(node.domain)
        elif isinstance(node, FalseLeaf):
            value = 0
        elif isinstance(node, LiteralLeaf):
            value = 1
        elif isinstance(node, DNFLeaf):
            raise IncompleteDTreeError(
                "exact counting requires a complete d-tree; found an "
                "undecomposed leaf"
            )
        elif isinstance(node, DecompAnd):
            value = 1
            for child in node.children():
                value *= counts[id(child)]
        elif isinstance(node, DecompOr):
            non_models = 1
            for child in node.children():
                non_models *= (1 << len(child.domain)) - counts[id(child)]
            value = (1 << len(node.domain)) - non_models
        elif isinstance(node, ExclusiveOr):
            value = sum(counts[id(child)] for child in node.children())
        else:
            raise TypeError(f"unknown d-tree node type {type(node).__name__}")
        counts[key] = value


def model_count_objects(node: DTreeNode,
                        counts: Optional[CountMemo] = None) -> int:
    """Object-tree model count: the PR 5 baseline walk.

    Same contract as :func:`model_count`, but walks the linked
    :class:`DTreeNode` graph with an explicit stack instead of the arena
    columns.  Kept as the differential baseline and benchmark reference.
    """
    memo: CountMemo = counts if counts is not None else {}
    _count_subtree(node, memo)
    return memo[id(node)]


def _arena_for_exact(node: DTreeNode, kernel: str = "python",
                     stats=None) -> Tuple[DTreeArena, List[int]]:
    """Flatten ``node`` and run the exact count pass, translating errors.

    ``kernel`` selects the evaluation backend
    (:mod:`repro.dtree.kernels`); the default keeps the pure-Python
    arena pass, bit-identical to the historical behaviour, and the
    engine opts into ``"auto"``/``"numpy"`` via its config.
    """
    arena = arena_of(node)
    try:
        column = counts_pass(arena, kernel=kernel, stats=stats)
    except IncompleteArenaError as error:
        raise IncompleteDTreeError(str(error)) from None
    return arena, column


def _mirror_counts(arena: DTreeArena, column: List[int],
                   counts: Optional[CountMemo]) -> None:
    """Copy the arena count column into a caller-supplied node-id memo."""
    if counts is None or id(arena.nodes[-1]) in counts:
        return
    for row, node in enumerate(arena.nodes):
        counts[id(node)] = column[row]


def model_count(node: DTreeNode, counts: Optional[CountMemo] = None,
                kernel: str = "python", stats=None) -> int:
    """Exact model count ``#phi`` of the function represented by ``node``.

    Requires a complete d-tree (no :class:`DNFLeaf` leaves).  Runs over
    the cached arena; ``counts`` is an optional shared memo (node id ->
    count) kept in sync with the arena's count column so legacy callers
    (and the engine's memo-hit accounting) keep working.  ``kernel``
    selects the backend (``"python"`` | ``"auto"`` | ``"numpy"``, see
    :mod:`repro.dtree.kernels`); the result is bit-identical either way.
    """
    arena, column = _arena_for_exact(node, kernel=kernel, stats=stats)
    _mirror_counts(arena, column, counts)
    return column[arena.root]


def _sibling_products(values: List[int]) -> List[int]:
    """For each index, the product of all *other* entries (prefix/suffix)."""
    size = len(values)
    prefix = [1] * (size + 1)
    for index, value in enumerate(values):
        prefix[index + 1] = prefix[index] * value
    others = [0] * size
    suffix = 1
    for index in range(size - 1, -1, -1):
        others[index] = prefix[index] * suffix
        suffix *= values[index]
    return others


def _push_multipliers(root: DTreeNode, counts: CountMemo,
                      banzhaf: Dict[int, int]) -> None:
    """Top-down multiplier pass accumulating signed multipliers per literal."""
    stack: List[Tuple[DTreeNode, int]] = [(root, 1)]
    while stack:
        node, multiplier = stack.pop()
        if multiplier == 0:
            continue
        if isinstance(node, LiteralLeaf):
            sign = -1 if node.negated else 1
            banzhaf[node.variable] += sign * multiplier
            continue
        if isinstance(node, (TrueLeaf, FalseLeaf)):
            continue
        children = node.children()
        if isinstance(node, DecompAnd):
            child_counts = [counts[id(child)] for child in children]
            for child, others in zip(children,
                                     _sibling_products(child_counts)):
                stack.append((child, multiplier * others))
        elif isinstance(node, DecompOr):
            non_models = [
                (1 << len(child.domain)) - counts[id(child)]
                for child in children
            ]
            for child, others in zip(children, _sibling_products(non_models)):
                stack.append((child, multiplier * others))
        elif isinstance(node, ExclusiveOr):
            for child in children:
                stack.append((child, multiplier))
        else:
            raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def exaban(node: DTreeNode, variable: int,
           counts: Optional[CountMemo] = None,
           kernel: str = "python", stats=None) -> Tuple[int, int]:
    """Exact ``(Banzhaf(phi, x), #phi)`` for one variable (Fig. 1).

    ``variable`` need not occur in the function; its Banzhaf value is then 0.
    Raises :class:`IncompleteDTreeError` on partial d-trees.  ``counts`` is
    the optional shared subtree-count memo (see :func:`model_count`).

    Runs over the cached arena: the fused all-variables pass is computed
    once and memoized on the arena, so repeated single-variable queries
    against one tree cost a dict lookup after the first.
    """
    arena = arena_of(node)
    try:
        # One fused sweep fills the counts payload *and* the Banzhaf
        # memo (the kernel path scatters both), so the count read below
        # never runs a second bottom-up pass.
        result = banzhaf_pass(arena, kernel=kernel, stats=stats)
    except IncompleteArenaError as error:
        raise IncompleteDTreeError(str(error)) from None
    column = arena_counts(arena)
    _mirror_counts(arena, column, counts)
    return result.get(variable, 0), column[arena.root]


def exaban_objects(node: DTreeNode, variable: int,
                   counts: Optional[CountMemo] = None) -> Tuple[int, int]:
    """Object-tree single-variable ExaBan: the PR 5 restricted walk."""
    memo: CountMemo = counts if counts is not None else {}
    _count_subtree(node, memo)
    banzhaf: Dict[int, int] = {variable: 0}

    # Restricted top-down pass: only the target variable's literal leaves
    # contribute, but the multiplier flow is the same as exaban_all's.
    stack: List[Tuple[DTreeNode, int]] = [(node, 1)]
    while stack:
        current, multiplier = stack.pop()
        if multiplier == 0 or variable not in current.domain:
            continue
        if isinstance(current, LiteralLeaf):
            if current.variable == variable:
                sign = -1 if current.negated else 1
                banzhaf[variable] += sign * multiplier
            continue
        if isinstance(current, (TrueLeaf, FalseLeaf)):
            continue
        children = current.children()
        if isinstance(current, DecompAnd):
            child_counts = [memo[id(child)] for child in children]
            for child, others in zip(children,
                                     _sibling_products(child_counts)):
                stack.append((child, multiplier * others))
        elif isinstance(current, DecompOr):
            non_models = [
                (1 << len(child.domain)) - memo[id(child)]
                for child in children
            ]
            for child, others in zip(children, _sibling_products(non_models)):
                stack.append((child, multiplier * others))
        elif isinstance(current, ExclusiveOr):
            for child in children:
                stack.append((child, multiplier))
        else:
            raise TypeError(
                f"unknown d-tree node type {type(current).__name__}")
    return banzhaf[variable], memo[id(node)]


def exaban_all(node: DTreeNode,
               counts: Optional[CountMemo] = None,
               kernel: str = "python", stats=None) -> Dict[int, int]:
    """Exact Banzhaf values of *all* domain variables in two passes.

    The bottom-up pass computes model counts; the top-down pass pushes a
    multiplier to every leaf (the product of sibling counts / non-model
    counts along the path), so that the Banzhaf value of a variable is the
    signed sum of the multipliers of its literal leaves.  Variables in the
    domain that never occur as literals get the Banzhaf value 0.

    Runs over the cached arena (see :func:`repro.dtree.arena.arena_banzhaf`)
    and memoizes the full result on it, so a second call against the same
    unmutated tree is a cache hit.  ``counts`` is the optional shared
    subtree-count memo: the arena's count column is mirrored into it, so
    later :func:`model_count` / :func:`exaban` calls through the same memo
    (or the object-tree baselines) never recount a subtree.

    ``kernel`` routes the fused pass through the kernel dispatcher
    (:func:`repro.dtree.kernels.banzhaf_pass`): one sweep computes the
    counts column *and* the Banzhaf values, vectorized over numpy where
    selected and sound, bit-identical big-int Python otherwise.
    """
    arena = arena_of(node)
    try:
        result = banzhaf_pass(arena, kernel=kernel, stats=stats)
    except IncompleteArenaError as error:
        raise IncompleteDTreeError(str(error)) from None
    _mirror_counts(arena, arena_counts(arena), counts)
    return dict(result)


def exaban_all_objects(node: DTreeNode,
                       counts: Optional[CountMemo] = None) -> Dict[int, int]:
    """Object-tree fused all-variables pass: the PR 5 baseline.

    Identical contract and bit-identical results to :func:`exaban_all`;
    kept as the measured baseline for ``bench_arena.py`` and the
    differential suite.
    """
    memo: CountMemo = counts if counts is not None else {}
    _count_subtree(node, memo)
    banzhaf: Dict[int, int] = {var: 0 for var in node.domain}
    _push_multipliers(node, memo, banzhaf)
    return banzhaf
