"""Approximation intervals for the anytime algorithms.

AdaBan and IchiBan reason about intervals ``[lower, upper]`` that are known
to contain an exact Banzhaf value.  This module provides the small interval
algebra they need:

* intersection (keeping the best bounds seen so far);
* the relative-error stopping test of Fig. 3:
  ``(1 - eps) * upper <= (1 + eps) * lower``;
* separation and midpoint ordering used for ranking and top-k.

Bounds are integers (Banzhaf values of positive DNF functions are integers);
error computations use :class:`fractions.Fraction` to stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lower, upper]`` containing an exact value."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(
                f"invalid interval: lower {self.lower} > upper {self.upper}"
            )

    # -- refinement ----------------------------------------------------- #

    def intersect(self, other: "Interval") -> "Interval":
        """Keep the best bounds of both intervals (they must overlap)."""
        lower = max(self.lower, other.lower)
        upper = min(self.upper, other.upper)
        if lower > upper:
            raise ValueError(
                f"intervals {self} and {other} do not overlap; "
                "one of them cannot contain the exact value"
            )
        return Interval(lower, upper)

    def width(self) -> int:
        """Upper minus lower."""
        return self.upper - self.lower

    def is_point(self) -> bool:
        """``True`` iff the interval is a single value."""
        return self.lower == self.upper

    def contains(self, value: Number) -> bool:
        """``True`` iff ``value`` lies in the interval."""
        return self.lower <= value <= self.upper

    # -- relative error -------------------------------------------------- #

    def satisfies_relative_error(self, epsilon: Number) -> bool:
        """The stopping test of Fig. 3.

        ``True`` iff ``(1 - eps) * upper <= (1 + eps) * lower``; any value in
        ``[(1 - eps) * upper, (1 + eps) * lower]`` is then a relative
        ``eps``-approximation of the exact value.
        """
        eps = Fraction(epsilon).limit_denominator(10**9) if not isinstance(
            epsilon, (int, Fraction)) else Fraction(epsilon)
        return (1 - eps) * self.upper <= (1 + eps) * self.lower

    def epsilon_interval(self, epsilon: Number) -> tuple[Fraction, Fraction]:
        """The certified interval ``[(1 - eps) * U, (1 + eps) * L]`` of Fig. 3."""
        eps = Fraction(epsilon).limit_denominator(10**9) if not isinstance(
            epsilon, (int, Fraction)) else Fraction(epsilon)
        if not self.satisfies_relative_error(eps):
            raise ValueError("interval does not satisfy the requested error")
        return (1 - eps) * Fraction(self.upper), (1 + eps) * Fraction(self.lower)

    def approximation(self, epsilon: Number) -> Fraction:
        """A single certified ``eps``-approximation (the certified midpoint)."""
        low, high = self.epsilon_interval(epsilon)
        return (low + high) / 2

    def relative_gap(self) -> Fraction:
        """The smallest ``eps`` the interval currently certifies.

        Solves ``(1 - eps) * upper = (1 + eps) * lower`` for ``eps``; returns
        0 for point intervals and 1 when the lower bound is 0 (no relative
        guarantee possible yet).
        """
        if self.is_point():
            return Fraction(0)
        if self.lower <= 0:
            return Fraction(1)
        return Fraction(self.upper - self.lower, self.upper + self.lower)

    # -- ordering -------------------------------------------------------- #

    def midpoint(self) -> Fraction:
        """The midpoint, used for approximate ranking."""
        return Fraction(self.lower + self.upper, 2)

    def strictly_above(self, other: "Interval") -> bool:
        """``True`` iff every value here exceeds every value of ``other``."""
        return self.lower > other.upper

    def strictly_below(self, other: "Interval") -> bool:
        """``True`` iff every value here is below every value of ``other``."""
        return self.upper < other.lower

    def overlaps(self, other: "Interval") -> bool:
        """``True`` iff the two intervals share at least one value."""
        return not (self.strictly_above(other) or self.strictly_below(other))

    @staticmethod
    def point(value: int) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(value, value)
