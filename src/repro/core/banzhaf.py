"""Convenience entry points for exact Banzhaf computation and normalization.

These wrap the d-tree compiler and ExaBan into one-call functions on DNFs and
Boolean expressions, and provide the two normalized variants mentioned in
Section 2 of the paper (Penrose-Banzhaf power and index).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, Optional

from repro.boolean.dnf import DNF
from repro.boolean.functions import BoolExpr, expr_banzhaf
from repro.core.exaban import exaban, exaban_all
from repro.dtree.compile import CompilationBudget, compile_dnf
from repro.dtree.heuristics import Heuristic, select_most_frequent


def banzhaf_exact(function: DNF, variable: Optional[int] = None,
                  heuristic: Heuristic = select_most_frequent,
                  budget: CompilationBudget | None = None):
    """Exact Banzhaf value(s) of a positive DNF via d-tree compilation.

    With ``variable`` given, returns a single integer; otherwise a dict
    mapping every domain variable to its Banzhaf value.
    """
    tree = compile_dnf(function, heuristic=heuristic, budget=budget)
    if variable is not None:
        value, _ = exaban(tree, variable)
        return value
    return exaban_all(tree)


def banzhaf_of_expression(expr: BoolExpr, variable: Hashable,
                          domain: Iterable[Hashable] | None = None) -> int:
    """Definitional Banzhaf value of a variable in a general Boolean expression.

    Handles negation (Example 2 of the paper produces a negative value);
    exhaustive, so only suitable for small expressions.
    """
    return expr_banzhaf(expr, variable, domain)


def penrose_banzhaf_power(function: DNF, variable: int,
                          heuristic: Heuristic = select_most_frequent
                          ) -> Fraction:
    """The Banzhaf value divided by ``2^(n-1)`` (Penrose-Banzhaf power)."""
    value = banzhaf_exact(function, variable, heuristic=heuristic)
    n = function.num_variables()
    return Fraction(value, 1 << max(0, n - 1))


def penrose_banzhaf_index(function: DNF,
                          heuristic: Heuristic = select_most_frequent
                          ) -> Dict[int, Fraction]:
    """Banzhaf values normalized to sum to 1 (Penrose-Banzhaf index).

    If all values are 0 (the function does not depend on any variable), the
    index of every variable is defined as 0.
    """
    values = banzhaf_exact(function, heuristic=heuristic)
    total = sum(values.values())
    if total == 0:
        return {v: Fraction(0) for v in values}
    return {v: Fraction(value, total) for v, value in values.items()}


def normalized_banzhaf(values: Dict[int, int]) -> Dict[int, Fraction]:
    """Normalize a dict of Banzhaf values to sum to 1 (0 if all are 0).

    Used by the experiment harness when comparing estimated value vectors via
    the l1 distance of Table 7.
    """
    total = sum(values.values())
    if total == 0:
        return {v: Fraction(0) for v in values}
    return {v: Fraction(value, total) for v, value in values.items()}
