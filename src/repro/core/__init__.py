"""Core algorithms: ExaBan, AdaBan, IchiBan, Shapley and the attribution API.

This package implements the paper's primary contribution:

* :mod:`repro.core.exaban` -- exact Banzhaf values and model counts over
  complete d-trees (Fig. 1), for one variable or all variables at once;
* :mod:`repro.core.bounds` -- lower/upper bounds on Banzhaf values and model
  counts for partial d-trees (Fig. 2) built on the iDNF L/U synthesis;
* :mod:`repro.core.intervals` -- interval arithmetic for the anytime loop
  (relative-error tests, separation, midpoints);
* :mod:`repro.core.adaban` -- the anytime deterministic approximation (Fig. 3);
* :mod:`repro.core.ichiban` -- Banzhaf-based ranking and top-k (Section 4.1);
* :mod:`repro.core.shapley` -- exact Shapley values via size-indexed model
  counts on d-trees plus brute force (Section 6, Appendix D);
* :mod:`repro.core.banzhaf` -- convenience entry points on DNFs and Boolean
  expressions (exact, normalized variants);
* :mod:`repro.core.attribution` -- the end-to-end fact-attribution API over a
  database and query.
"""

from repro.core.adaban import AdaBanResult, adaban, adaban_all
from repro.core.attribution import (
    AttributionResult,
    FactAttribution,
    attribute_facts,
)
from repro.core.banzhaf import (
    banzhaf_exact,
    banzhaf_of_expression,
    normalized_banzhaf,
    penrose_banzhaf_index,
    penrose_banzhaf_power,
)
from repro.core.bounds import BanzhafBounds, bounds_for_variable
from repro.core.exaban import exaban, exaban_all, model_count
from repro.core.ichiban import (
    IchiBanTimeout,
    RankedVariable,
    ichiban_rank,
    ichiban_topk,
    ichiban_topk_certain,
    ranked_from_bounds,
    ranked_from_intervals,
)
from repro.core.intervals import Interval
from repro.core.shapley import shapley_brute_force, shapley_exact, shapley_all

__all__ = [
    "AdaBanResult",
    "AttributionResult",
    "BanzhafBounds",
    "FactAttribution",
    "IchiBanTimeout",
    "Interval",
    "RankedVariable",
    "adaban",
    "adaban_all",
    "attribute_facts",
    "banzhaf_exact",
    "banzhaf_of_expression",
    "bounds_for_variable",
    "exaban",
    "exaban_all",
    "ichiban_rank",
    "ichiban_topk",
    "ichiban_topk_certain",
    "model_count",
    "normalized_banzhaf",
    "penrose_banzhaf_index",
    "penrose_banzhaf_power",
    "ranked_from_bounds",
    "ranked_from_intervals",
    "shapley_all",
    "shapley_brute_force",
    "shapley_exact",
]
