"""AdaBan: anytime deterministic approximation of Banzhaf values (Fig. 3).

The algorithm maintains a partial d-tree of the lineage.  In each round it

1. evaluates the ``bounds`` procedure on the current tree to obtain an
   interval that provably contains the exact Banzhaf value,
2. intersects it with the best interval seen so far (each refinement can only
   tighten the interval -- this is the "anytime deterministic" property), and
3. stops if the interval certifies the requested relative error, otherwise
   expands one more leaf of the d-tree and repeats.

Three of the paper's optimizations (Section 3.2.4) are implemented here or in
the modules this builds on: lazy re-evaluation only after Shannon expansions
(in :class:`~repro.dtree.incremental.IncrementalCompiler`), per-subtree bound
caching with path invalidation (in :mod:`repro.core.bounds`), and re-use of
the partial d-tree across variables (in :func:`adaban_all`).  The fourth
(deriving the Banzhaf bound from ``#phi`` and ``#phi[x:=0]``) is available as
an alternative leaf bound and is exercised by the ablation benchmark.

``adaban_trace`` exposes the interval after every refinement step; the
Figure 5 convergence experiment is built on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.boolean.dnf import DNF
from repro.core.bounds import bounds_for_variable
from repro.core.intervals import Interval
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.incremental import IncrementalCompiler


class ApproximationTimeout(Exception):
    """Raised when AdaBan exceeds its time or step budget before converging."""


@dataclass(frozen=True)
class AdaBanResult:
    """Result of an AdaBan run for one variable.

    Attributes
    ----------
    variable:
        The variable (fact id) the result refers to.
    interval:
        The final interval; it always contains the exact Banzhaf value.
    epsilon:
        The requested relative error.
    estimate:
        A certified ``epsilon``-approximation (midpoint of the certified
        range) when the error was reached, otherwise the interval midpoint.
    converged:
        Whether the requested error was certified.
    refinement_steps:
        Number of bound evaluations performed.
    """

    variable: int
    interval: Interval
    epsilon: float
    estimate: Fraction
    converged: bool
    refinement_steps: int

    @property
    def lower(self) -> int:
        """Final lower bound."""
        return self.interval.lower

    @property
    def upper(self) -> int:
        """Final upper bound."""
        return self.interval.upper


def _initial_interval(function: DNF, variable: int) -> Interval:
    """The trivial bounds ``[0, 2^(n-1)]`` used to seed the refinement."""
    n = function.num_variables()
    if not function.contains_variable(variable):
        return Interval.point(0)
    return Interval(0, 1 << max(0, n - 1))


class _AnytimeState:
    """Shared partial d-tree plus per-variable best intervals.

    ``compiler`` may carry an already (partially) expanded compilation to
    resume — e.g. one rebuilt from a persisted
    :class:`~repro.engine.artifact.CompiledLineage` — instead of starting
    from the undecomposed lineage.  The resumed tree must represent the
    same function; refinement then starts from its current frontier, so
    work a previous run (or process) paid for is never redone.
    """

    def __init__(self, function: DNF, heuristic: Heuristic,
                 compiler: Optional[IncrementalCompiler] = None) -> None:
        self.function = function
        self.compiler = (compiler if compiler is not None
                         else IncrementalCompiler(function,
                                                  heuristic=heuristic))
        self.best: Dict[int, Interval] = {}

    def refine(self, variable: int) -> Interval:
        """Evaluate bounds for ``variable`` and fold them into the best interval."""
        node_bounds = bounds_for_variable(self.compiler.root, variable)
        fresh = Interval(node_bounds.banzhaf_lower, node_bounds.banzhaf_upper)
        previous = self.best.get(variable)
        if previous is None:
            previous = _initial_interval(self.function, variable)
        best = previous.intersect(fresh)
        self.best[variable] = best
        return best

    def expand(self, lazy: bool = True) -> bool:
        """Expand the partial d-tree by one (lazy) step."""
        return self.compiler.expand_step(lazy=lazy)

    def is_complete(self) -> bool:
        """``True`` once the d-tree is complete (bounds are then exact)."""
        return self.compiler.is_complete()


def adaban(function: DNF, variable: int, epsilon: float = 0.1,
           heuristic: Heuristic = select_most_frequent,
           max_steps: Optional[int] = None,
           timeout_seconds: Optional[float] = None) -> AdaBanResult:
    """Approximate the Banzhaf value of ``variable`` to relative error ``epsilon``.

    Raises :class:`ApproximationTimeout` if the step or time budget is
    exhausted before the error is certified (with ``epsilon=0`` the run
    degenerates into exact computation by full compilation).
    """
    state = _AnytimeState(function, heuristic)
    result = _run_for_variable(state, variable, epsilon, max_steps,
                               timeout_seconds)
    return result


def adaban_all(function: DNF, epsilon: float = 0.1,
               variables: Optional[Sequence[int]] = None,
               heuristic: Heuristic = select_most_frequent,
               max_steps: Optional[int] = None,
               timeout_seconds: Optional[float] = None
               ) -> Dict[int, AdaBanResult]:
    """Approximate the Banzhaf values of several variables.

    The partial d-tree is shared across variables (the paper's optimization
    (3)): the approximation for the first variable typically expands the tree
    far enough that later variables converge with few or no extra expansions.
    """
    state = _AnytimeState(function, heuristic)
    return adaban_over_state(state, epsilon=epsilon, variables=variables,
                             max_steps=max_steps,
                             timeout_seconds=timeout_seconds)


def adaban_over_state(state: _AnytimeState, epsilon: float = 0.1,
                      variables: Optional[Sequence[int]] = None,
                      max_steps: Optional[int] = None,
                      timeout_seconds: Optional[float] = None
                      ) -> Dict[int, AdaBanResult]:
    """:func:`adaban_all` over a caller-owned anytime state.

    The engine uses this to *resume* refinement from a cached or persisted
    partial d-tree (``state`` built via :func:`shared_state` with a resumed
    compiler) and to keep the state — and its partial tree — in hand when
    the budget runs out, so the work survives an
    :class:`ApproximationTimeout` instead of dying with the call.
    """
    if variables is None:
        variables = sorted(state.function.variables)
    deadline = (time.monotonic() + timeout_seconds
                if timeout_seconds is not None else None)
    results: Dict[int, AdaBanResult] = {}
    for variable in variables:
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ApproximationTimeout(
                    "time budget exhausted before all variables converged"
                )
        results[variable] = _run_for_variable(state, variable, epsilon,
                                              max_steps, remaining)
    return results


def _run_for_variable(state: _AnytimeState, variable: int, epsilon: float,
                      max_steps: Optional[int],
                      timeout_seconds: Optional[float]) -> AdaBanResult:
    started = time.monotonic()
    steps = 0
    best = None
    while True:
        best = state.refine(variable)
        steps += 1
        if best.satisfies_relative_error(epsilon):
            return AdaBanResult(
                variable=variable,
                interval=best,
                epsilon=float(epsilon),
                estimate=best.approximation(epsilon),
                converged=True,
                refinement_steps=steps,
            )
        if state.is_complete():
            # Complete d-tree: the bounds are exact; the error test can only
            # fail for epsilon = 0 and value 0, which is a point interval.
            return AdaBanResult(
                variable=variable,
                interval=best,
                epsilon=float(epsilon),
                estimate=best.midpoint(),
                converged=best.is_point(),
                refinement_steps=steps,
            )
        if max_steps is not None and steps >= max_steps:
            raise ApproximationTimeout(
                f"no convergence within {max_steps} refinement steps"
            )
        if (timeout_seconds is not None
                and time.monotonic() - started > timeout_seconds):
            raise ApproximationTimeout(
                f"no convergence within {timeout_seconds} seconds"
            )
        state.expand(lazy=True)


def adaban_trace(function: DNF, variable: int,
                 heuristic: Heuristic = select_most_frequent,
                 max_steps: Optional[int] = None
                 ) -> Iterator[tuple[float, Interval]]:
    """Yield ``(elapsed_seconds, interval)`` after every refinement step.

    Runs until the d-tree is complete (exact value) or ``max_steps`` bound
    evaluations have happened.  Used by the Figure 5 convergence experiment.
    """
    state = _AnytimeState(function, heuristic)
    started = time.monotonic()
    steps = 0
    while True:
        best = state.refine(variable)
        steps += 1
        yield time.monotonic() - started, best
        if state.is_complete() or best.is_point():
            return
        if max_steps is not None and steps >= max_steps:
            return
        state.expand(lazy=True)


def shared_state(function: DNF,
                 heuristic: Heuristic = select_most_frequent,
                 compiler: Optional[IncrementalCompiler] = None
                 ) -> _AnytimeState:
    """Create a shareable anytime state (used by IchiBan and the engine).

    ``compiler`` resumes an existing (partially expanded) compilation;
    see :class:`_AnytimeState`.
    """
    return _AnytimeState(function, heuristic, compiler=compiler)
