"""End-to-end fact attribution: query + database -> Banzhaf values per fact.

This is the public entry point a downstream user calls.  Since the engine
refactor it is a thin compatibility wrapper over
:class:`repro.engine.Engine`, which evaluates the query, canonicalizes and
memoizes each answer's lineage, runs the requested algorithm (exact ExaBan,
anytime AdaBan, or Shapley; ``"auto"`` picks ExaBan with an AdaBan fallback)
and maps the lineage variables back to database facts.  Ranking and top-k
(IchiBan) run through the same pipeline via the engine's ``rank``/``topk``
methods, so repeat ranking traffic is served from the lineage cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Literal, Optional, Tuple

from repro.core.ichiban import RankedVariable
from repro.db.database import Database, Fact
from repro.db.query import Query
from repro.dtree.compile import CompilationBudget

Method = Literal["auto", "exact", "approximate", "shapley"]


@dataclass(frozen=True)
class FactAttribution:
    """The attribution score of one fact for one answer tuple."""

    fact: Fact
    variable: int
    value: Fraction
    lower: Optional[int] = None
    upper: Optional[int] = None

    def __repr__(self) -> str:
        bounds = ""
        if self.lower is not None and self.upper is not None:
            bounds = f" in [{self.lower}, {self.upper}]"
        return f"{self.fact}: {float(self.value):.6g}{bounds}"


@dataclass(frozen=True)
class AttributionResult:
    """All fact attributions for one answer tuple, best first."""

    answer: Tuple[object, ...]
    attributions: Tuple[FactAttribution, ...]

    def top(self, k: int) -> Tuple[FactAttribution, ...]:
        """The ``k`` facts with the highest scores."""
        return self.attributions[:k]

    def score_of(self, fact: Fact) -> Fraction:
        """The score of a specific fact (0 if the fact does not occur)."""
        for attribution in self.attributions:
            if attribution.fact == fact:
                return attribution.value
        return Fraction(0)


def _attributions_from_values(values: Dict[int, Fraction], database: Database,
                              bounds: Optional[Dict[int, Tuple[int, int]]] = None
                              ) -> Tuple[FactAttribution, ...]:
    entries = []
    for variable, value in values.items():
        lower, upper = (bounds or {}).get(variable, (None, None))
        entries.append(FactAttribution(
            fact=database.fact_of(variable),
            variable=variable,
            value=Fraction(value),
            lower=lower,
            upper=upper,
        ))
    entries.sort(key=lambda entry: (-entry.value, entry.variable))
    return tuple(entries)


#: Shared serial engines, one per (method, epsilon) configuration.  Sharing
#: keeps the lineage cache warm across ``attribute_facts`` calls -- repeat
#: queries and isomorphic answers skip compilation entirely.  Bounded: the
#: least recently created engines are dropped past ``_MAX_SHARED_ENGINES``
#: so data-derived epsilon values cannot accumulate caches forever.
_SHARED_ENGINES: Dict[Tuple[str, float], object] = {}
_MAX_SHARED_ENGINES = 8

_VALID_METHODS = ("auto", "exact", "approximate", "shapley")


def clear_shared_engines() -> None:
    """Drop the shared engines (and their lineage caches).

    ``attribute_facts`` rebuilds them lazily; use this to release memory in
    long-running processes or to force cold-cache measurements.
    """
    _SHARED_ENGINES.clear()


def _shared_engine(method: str, epsilon: Optional[float],
                   k: Optional[int] = None):
    """The shared engine for one (method, epsilon, k) configuration."""
    from repro.engine.engine import engine_for

    key = (method, epsilon, k)
    engine = _SHARED_ENGINES.get(key)
    if engine is None:
        while len(_SHARED_ENGINES) >= _MAX_SHARED_ENGINES:
            _SHARED_ENGINES.pop(next(iter(_SHARED_ENGINES)))
        engine = engine_for(method, epsilon=epsilon, k=k)
        _SHARED_ENGINES[key] = engine
    return engine


def _engine_for_call(method: Method, epsilon: float,
                     compilation_budget: Optional[CompilationBudget]):
    from repro.engine.engine import engine_for

    if method not in _VALID_METHODS:
        raise ValueError(f"unknown attribution method {method!r}")
    if method == "approximate":
        # The budget governs the *exact* methods only (seed semantics);
        # AdaBan runs unbounded here, converging deterministically.
        compilation_budget = None
    if compilation_budget is not None:
        # A caller-supplied budget gets a private engine: its results are
        # budget-dependent (they may raise) and must not pollute the shared
        # cache of unlimited-budget runs.
        return engine_for(method, epsilon=epsilon, budget=compilation_budget)
    return _shared_engine(method, epsilon)


def attribute_facts(query: Query, database: Database,
                    method: Method = "exact",
                    epsilon: float = 0.1,
                    compilation_budget: Optional[CompilationBudget] = None
                    ) -> List[AttributionResult]:
    """Attribute every answer of ``query`` to the endogenous facts.

    A thin wrapper over :class:`repro.engine.Engine` (kept for backward
    compatibility); use the engine directly for batching, parallelism and
    statistics.

    Parameters
    ----------
    query:
        A conjunctive query or union of conjunctive queries.
    database:
        The database with its endogenous/exogenous fact partition.
    method:
        ``"exact"`` for ExaBan Banzhaf values, ``"approximate"`` for AdaBan
        with relative error ``epsilon``, ``"shapley"`` for exact Shapley
        values (provided for comparison), ``"auto"`` for ExaBan with an
        AdaBan fallback when the compilation budget is exhausted.
    epsilon:
        Relative error for the approximate method (and the auto fallback).
    compilation_budget:
        Optional resource budget for the exact methods, applied per lineage.

    Returns one :class:`AttributionResult` per answer tuple.
    """
    engine = _engine_for_call(method, epsilon, compilation_budget)
    return engine.attribute(query, database)


def rank_facts(query: Query, database: Database,
               epsilon: Optional[float] = 0.1
               ) -> List[Tuple[Tuple[object, ...], List[Tuple[Fact, RankedVariable]]]]:
    """Rank the facts of every answer by Banzhaf value using IchiBan.

    A thin wrapper over the engine's ``rank`` method: lineages are
    canonicalized and deduplicated, so isomorphic answers share one anytime
    run and repeat ranking traffic is served from the shared lineage cache.
    ``epsilon=None`` demands a certain ranking (pairwise-separated
    intervals); otherwise the run may also stop at relative error
    ``epsilon``.
    """
    return _shared_engine("rank", epsilon).rank(query, database)


def topk_facts(query: Query, database: Database, k: int,
               epsilon: float = 0.1
               ) -> List[Tuple[Tuple[object, ...], List[Tuple[Fact, RankedVariable]]]]:
    """The top-``k`` facts of every answer by Banzhaf value using IchiBan.

    A thin wrapper over the engine's ``topk`` method.  One shared engine
    per epsilon serves every ``k`` (results are cached per canonical
    lineage, epsilon *and* k; completed d-trees are shared across k).
    """
    if k < 1:
        raise ValueError("k must be positive")
    return _shared_engine("topk", epsilon).rank(query, database, k=k)
