"""End-to-end fact attribution: query + database -> Banzhaf values per fact.

This is the public entry point a downstream user calls: it evaluates the
query, builds the lineage of each answer tuple, runs the requested algorithm
(exact ExaBan, anytime AdaBan, or ranking/top-k IchiBan) and maps the lineage
variables back to database facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.core.adaban import adaban_all
from repro.core.banzhaf import banzhaf_exact
from repro.core.ichiban import RankedVariable, ichiban_rank, ichiban_topk
from repro.core.shapley import shapley_all
from repro.db.database import Database, Fact
from repro.db.lineage import AnswerLineage, lineage_of_answers
from repro.db.query import Query
from repro.dtree.compile import CompilationBudget

Method = Literal["exact", "approximate", "shapley"]


@dataclass(frozen=True)
class FactAttribution:
    """The attribution score of one fact for one answer tuple."""

    fact: Fact
    variable: int
    value: Fraction
    lower: Optional[int] = None
    upper: Optional[int] = None

    def __repr__(self) -> str:
        bounds = ""
        if self.lower is not None and self.upper is not None:
            bounds = f" in [{self.lower}, {self.upper}]"
        return f"{self.fact}: {float(self.value):.6g}{bounds}"


@dataclass(frozen=True)
class AttributionResult:
    """All fact attributions for one answer tuple, best first."""

    answer: Tuple[object, ...]
    attributions: Tuple[FactAttribution, ...]

    def top(self, k: int) -> Tuple[FactAttribution, ...]:
        """The ``k`` facts with the highest scores."""
        return self.attributions[:k]

    def score_of(self, fact: Fact) -> Fraction:
        """The score of a specific fact (0 if the fact does not occur)."""
        for attribution in self.attributions:
            if attribution.fact == fact:
                return attribution.value
        return Fraction(0)


def _attributions_from_values(values: Dict[int, Fraction], database: Database,
                              bounds: Optional[Dict[int, Tuple[int, int]]] = None
                              ) -> Tuple[FactAttribution, ...]:
    entries = []
    for variable, value in values.items():
        lower, upper = (bounds or {}).get(variable, (None, None))
        entries.append(FactAttribution(
            fact=database.fact_of(variable),
            variable=variable,
            value=Fraction(value),
            lower=lower,
            upper=upper,
        ))
    entries.sort(key=lambda entry: (-entry.value, entry.variable))
    return tuple(entries)


def attribute_facts(query: Query, database: Database,
                    method: Method = "exact",
                    epsilon: float = 0.1,
                    compilation_budget: Optional[CompilationBudget] = None
                    ) -> List[AttributionResult]:
    """Attribute every answer of ``query`` to the endogenous facts.

    Parameters
    ----------
    query:
        A conjunctive query or union of conjunctive queries.
    database:
        The database with its endogenous/exogenous fact partition.
    method:
        ``"exact"`` for ExaBan Banzhaf values, ``"approximate"`` for AdaBan
        with relative error ``epsilon``, ``"shapley"`` for exact Shapley
        values (provided for comparison).
    epsilon:
        Relative error for the approximate method.
    compilation_budget:
        Optional resource budget for the exact methods.

    Returns one :class:`AttributionResult` per answer tuple.
    """
    results: List[AttributionResult] = []
    for answer in lineage_of_answers(query, database):
        results.append(_attribute_single(answer, database, method, epsilon,
                                         compilation_budget))
    return results


def _attribute_single(answer: AnswerLineage, database: Database,
                      method: Method, epsilon: float,
                      compilation_budget: Optional[CompilationBudget]
                      ) -> AttributionResult:
    lineage = answer.lineage
    if method == "exact":
        raw = banzhaf_exact(lineage, budget=compilation_budget)
        values = {v: Fraction(value) for v, value in raw.items()}
        bounds = {v: (value, value) for v, value in raw.items()}
    elif method == "approximate":
        approx = adaban_all(lineage, epsilon=epsilon)
        values = {v: result.estimate for v, result in approx.items()}
        bounds = {v: (result.lower, result.upper)
                  for v, result in approx.items()}
    elif method == "shapley":
        values = dict(shapley_all(lineage, budget=compilation_budget))
        bounds = {}
    else:
        raise ValueError(f"unknown attribution method {method!r}")
    return AttributionResult(
        answer=answer.values,
        attributions=_attributions_from_values(values, database, bounds),
    )


def rank_facts(query: Query, database: Database,
               epsilon: Optional[float] = 0.1
               ) -> List[Tuple[Tuple[object, ...], List[Tuple[Fact, RankedVariable]]]]:
    """Rank the facts of every answer by Banzhaf value using IchiBan."""
    results = []
    for answer in lineage_of_answers(query, database):
        ranking = ichiban_rank(answer.lineage, epsilon=epsilon)
        results.append((answer.values,
                        [(database.fact_of(entry.variable), entry)
                         for entry in ranking]))
    return results


def topk_facts(query: Query, database: Database, k: int,
               epsilon: float = 0.1
               ) -> List[Tuple[Tuple[object, ...], List[Tuple[Fact, RankedVariable]]]]:
    """The top-``k`` facts of every answer by Banzhaf value using IchiBan."""
    results = []
    for answer in lineage_of_answers(query, database):
        ranking = ichiban_topk(answer.lineage, k=k, epsilon=epsilon)
        results.append((answer.values,
                        [(database.fact_of(entry.variable), entry)
                         for entry in ranking]))
    return results
