"""Seed (pre-kernel) evaluation passes, kept alive as the reference.

The counting and attribution passes in :mod:`repro.core.exaban` and
:mod:`repro.core.shapley` used to be *recursive* and *unshared*: one full
tree descent per call, one full size-vector descent per Shapley variable.
This module preserves those seed implementations verbatim so that

* the differential test suite can assert the iterative fused passes
  produce bit-identical integers/Fractions on random d-trees, and
* ``benchmarks/bench_kernel.py`` can measure the end-to-end win of this
  PR's hot path (bitset kernel + fused memoized passes) against the
  exact execution the seed performed, not a strawman.

Being recursive, everything here inherits the interpreter recursion
limit -- the deep-chain regression test demonstrates these functions
*cannot* traverse the trees the iterative passes handle.  Do not use
this module outside tests and benchmarks.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb, factorial
from typing import Dict, List, Sequence, Tuple

from repro.boolean.dnf import DNF
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)
from repro.core.exaban import IncompleteDTreeError


def model_count_recursive(node: DTreeNode) -> int:
    """Seed ``model_count``: one recursive descent per call."""
    if isinstance(node, TrueLeaf):
        return 1 << len(node.domain)
    if isinstance(node, FalseLeaf):
        return 0
    if isinstance(node, LiteralLeaf):
        return 1
    if isinstance(node, DNFLeaf):
        raise IncompleteDTreeError(
            "model_count requires a complete d-tree; found an undecomposed leaf"
        )
    child_counts = [model_count_recursive(child) for child in node.children()]
    if isinstance(node, DecompAnd):
        product = 1
        for count in child_counts:
            product *= count
        return product
    if isinstance(node, DecompOr):
        non_models = 1
        for child, count in zip(node.children(), child_counts):
            non_models *= (1 << len(child.domain)) - count
        return (1 << len(node.domain)) - non_models
    if isinstance(node, ExclusiveOr):
        return sum(child_counts)
    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def exaban_recursive(node: DTreeNode, variable: int) -> Tuple[int, int]:
    """Seed ``exaban``: recursive ``(Banzhaf, count)`` with nested products."""
    if isinstance(node, LiteralLeaf):
        if node.variable == variable:
            return (-1 if node.negated else 1), 1
        return 0, 1
    if isinstance(node, TrueLeaf):
        return 0, 1 << len(node.domain)
    if isinstance(node, FalseLeaf):
        return 0, 0
    if isinstance(node, DNFLeaf):
        raise IncompleteDTreeError(
            "exaban requires a complete d-tree; found an undecomposed leaf"
        )

    results = [exaban_recursive(child, variable) for child in node.children()]
    counts = [count for _, count in results]

    if isinstance(node, DecompAnd):
        total = 1
        for count in counts:
            total *= count
        banzhaf = 0
        for index, (child_banzhaf, _) in enumerate(results):
            if child_banzhaf:
                others = 1
                for j, count in enumerate(counts):
                    if j != index:
                        others *= count
                banzhaf += child_banzhaf * others
        return banzhaf, total

    if isinstance(node, DecompOr):
        non_models = [
            (1 << len(child.domain)) - count
            for child, count in zip(node.children(), counts)
        ]
        total_non = 1
        for value in non_models:
            total_non *= value
        total = (1 << len(node.domain)) - total_non
        banzhaf = 0
        for index, (child_banzhaf, _) in enumerate(results):
            if child_banzhaf:
                others = 1
                for j, value in enumerate(non_models):
                    if j != index:
                        others *= value
                banzhaf += child_banzhaf * others
        return banzhaf, total

    if isinstance(node, ExclusiveOr):
        banzhaf = sum(child_banzhaf for child_banzhaf, _ in results)
        total = sum(counts)
        return banzhaf, total

    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def exaban_all_recursive(node: DTreeNode) -> Dict[int, int]:
    """Seed ``exaban_all``: recursive two-pass with quadratic sibling products."""
    counts: Dict[int, int] = {}

    def count_pass(current: DTreeNode) -> int:
        value = _node_count(current)
        counts[id(current)] = value
        return value

    def _node_count(current: DTreeNode) -> int:
        if isinstance(current, TrueLeaf):
            return 1 << len(current.domain)
        if isinstance(current, FalseLeaf):
            return 0
        if isinstance(current, LiteralLeaf):
            return 1
        if isinstance(current, DNFLeaf):
            raise IncompleteDTreeError(
                "exaban_all requires a complete d-tree; found an undecomposed leaf"
            )
        child_counts = [count_pass(child) for child in current.children()]
        if isinstance(current, DecompAnd):
            product = 1
            for count in child_counts:
                product *= count
            return product
        if isinstance(current, DecompOr):
            non_models = 1
            for child, count in zip(current.children(), child_counts):
                non_models *= (1 << len(child.domain)) - count
            return (1 << len(current.domain)) - non_models
        if isinstance(current, ExclusiveOr):
            return sum(child_counts)
        raise TypeError(f"unknown d-tree node type {type(current).__name__}")

    count_pass(node)

    banzhaf: Dict[int, int] = {var: 0 for var in node.domain}

    def push(current: DTreeNode, multiplier: int) -> None:
        if multiplier == 0:
            return
        if isinstance(current, LiteralLeaf):
            sign = -1 if current.negated else 1
            banzhaf[current.variable] += sign * multiplier
            return
        if isinstance(current, (TrueLeaf, FalseLeaf)):
            return
        children = current.children()
        if isinstance(current, DecompAnd):
            for index, child in enumerate(children):
                others = 1
                for j, sibling in enumerate(children):
                    if j != index:
                        others *= counts[id(sibling)]
                push(child, multiplier * others)
            return
        if isinstance(current, DecompOr):
            non_models = [
                (1 << len(sibling.domain)) - counts[id(sibling)]
                for sibling in children
            ]
            for index, child in enumerate(children):
                others = 1
                for j, value in enumerate(non_models):
                    if j != index:
                        others *= value
                push(child, multiplier * others)
            return
        if isinstance(current, ExclusiveOr):
            for child in children:
                push(child, multiplier)
            return
        raise TypeError(f"unknown d-tree node type {type(current).__name__}")

    push(node, 1)
    return banzhaf


# --------------------------------------------------------------------- #
# Seed Shapley: one full recursive size-vector descent per variable
# --------------------------------------------------------------------- #


def _convolve(left: Sequence[int], right: Sequence[int]) -> List[int]:
    result = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                result[i + j] += a * b
    return result


def _binomial_vector(n: int) -> List[int]:
    return [comb(n, k) for k in range(n + 1)]


def _complement(vector: Sequence[int], n: int) -> List[int]:
    return [comb(n, k) - vector[k] for k in range(n + 1)]


class _SizeVectors:
    __slots__ = ("models", "positive", "negative", "domain_size", "has_x")

    def __init__(self, models: List[int], positive: List[int],
                 negative: List[int], domain_size: int, has_x: bool) -> None:
        self.models = models
        self.positive = positive
        self.negative = negative
        self.domain_size = domain_size
        self.has_x = has_x


def _vectors(node: DTreeNode, variable: int) -> _SizeVectors:
    domain_size = len(node.domain)
    has_x = variable in node.domain

    if isinstance(node, TrueLeaf):
        models = _binomial_vector(domain_size)
        cof = _binomial_vector(domain_size - 1) if has_x else models
        return _SizeVectors(models, cof, list(cof), domain_size, has_x)

    if isinstance(node, FalseLeaf):
        models = [0] * (domain_size + 1)
        cof = [0] * domain_size if has_x else models
        return _SizeVectors(models, cof, list(cof), domain_size, has_x)

    if isinstance(node, LiteralLeaf):
        if node.negated:
            models = [1, 0]
        else:
            models = [0, 1]
        if node.variable == variable:
            positive = [0] if node.negated else [1]
            negative = [1] if node.negated else [0]
            return _SizeVectors(models, positive, negative, 1, True)
        return _SizeVectors(models, list(models), list(models), 1, False)

    if isinstance(node, DNFLeaf):
        raise ValueError("Shapley computation requires a complete d-tree")

    children = [_vectors(child, variable) for child in node.children()]

    if isinstance(node, DecompAnd):
        return _combine_product(children, domain_size, has_x, conjunction=True)
    if isinstance(node, DecompOr):
        return _combine_product(children, domain_size, has_x, conjunction=False)
    if isinstance(node, ExclusiveOr):
        models = [0] * (domain_size + 1)
        cof_len = domain_size if has_x else domain_size + 1
        positive = [0] * cof_len
        negative = [0] * cof_len
        for child in children:
            for k, value in enumerate(child.models):
                models[k] += value
            for k, value in enumerate(child.positive):
                positive[k] += value
            for k, value in enumerate(child.negative):
                negative[k] += value
        return _SizeVectors(models, positive, negative, domain_size, has_x)
    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def _combine_product(children: List[_SizeVectors], domain_size: int,
                     has_x: bool, conjunction: bool) -> _SizeVectors:
    def product(select) -> List[int]:
        result = [1]
        for child in children:
            result = _convolve(result, select(child))
        return result

    if conjunction:
        models = product(lambda c: c.models)
        positive = product(lambda c: c.positive if c.has_x else c.models)
        negative = product(lambda c: c.negative if c.has_x else c.models)
        return _SizeVectors(models, positive, negative, domain_size, has_x)

    non_models = product(lambda c: _complement(c.models, c.domain_size))
    models = [comb(domain_size, k) - non_models[k]
              for k in range(domain_size + 1)]
    cof_size = domain_size - 1 if has_x else domain_size

    def cof_non_models(select) -> List[int]:
        result = [1]
        for child in children:
            if child.has_x:
                vec = select(child)
                result = _convolve(
                    result, _complement_raw(vec, child.domain_size - 1))
            else:
                result = _convolve(
                    result, _complement(child.models, child.domain_size))
        return result

    positive_non = cof_non_models(lambda c: c.positive)
    negative_non = cof_non_models(lambda c: c.negative)
    positive = [comb(cof_size, k) - positive_non[k] for k in range(cof_size + 1)]
    negative = [comb(cof_size, k) - negative_non[k] for k in range(cof_size + 1)]
    return _SizeVectors(models, positive, negative, domain_size, has_x)


def _complement_raw(vector: Sequence[int], n: int) -> List[int]:
    return [comb(n, k) - vector[k] for k in range(n + 1)]


def critical_counts_recursive(function: DNF, variable: int,
                              tree: DTreeNode) -> List[int]:
    """Seed critical-set counts: one full vector descent for this variable."""
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    vectors = _vectors(tree, variable)
    n = function.num_variables()
    counts = []
    for k in range(n):
        positive = vectors.positive[k] if k < len(vectors.positive) else 0
        negative = vectors.negative[k] if k < len(vectors.negative) else 0
        counts.append(positive - negative)
    return counts


def shapley_all_recursive(function: DNF,
                          tree: DTreeNode) -> Dict[int, Fraction]:
    """Seed ``shapley_all``: a full recursive vector pass *per variable*."""
    n = function.num_variables()
    n_factorial = factorial(n)
    values: Dict[int, Fraction] = {}
    for variable in sorted(function.variables):
        counts = critical_counts_recursive(function, variable, tree)
        total = Fraction(0)
        for k, count in enumerate(counts):
            if count:
                total += Fraction(factorial(k) * factorial(n - k - 1),
                                  n_factorial) * count
        values[variable] = total
    return values
