"""IchiBan: Banzhaf-based ranking and top-k of facts (Section 4.1).

IchiBan is a natural generalization of AdaBan: it maintains approximation
intervals for the Banzhaf values of *all* variables of the lineage and keeps
refining them (by expanding the shared partial d-tree) until the intervals
are informative enough for the task at hand:

* **top-k with certainty** -- a variable is discarded once its upper bound is
  below the lower bounds of at least ``k`` other variables; the run stops
  when only ``k`` candidates remain and their intervals are separated from
  (or equal to) the rest;
* **approximate top-k / ranking with error ``epsilon``** -- the run may also
  stop once every remaining interval certifies relative error ``epsilon``;
  variables are then ordered by interval midpoints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.boolean.dnf import DNF
from repro.core.adaban import ApproximationTimeout, _AnytimeState
from repro.core.intervals import Interval
from repro.dtree.heuristics import Heuristic, select_most_frequent


@dataclass(frozen=True)
class RankedVariable:
    """One entry of an IchiBan ranking."""

    variable: int
    interval: Interval
    estimate: Fraction

    @property
    def lower(self) -> int:
        """Lower bound of the Banzhaf interval."""
        return self.interval.lower

    @property
    def upper(self) -> int:
        """Upper bound of the Banzhaf interval."""
        return self.interval.upper


def _ranked(intervals: Dict[int, Interval]) -> List[RankedVariable]:
    """Order variables by interval midpoint (descending), ties by id."""
    entries = [
        RankedVariable(variable=v, interval=interval,
                       estimate=interval.midpoint())
        for v, interval in intervals.items()
    ]
    entries.sort(key=lambda entry: (-entry.estimate, entry.variable))
    return entries


def _topk_separated(intervals: Dict[int, Interval], k: int) -> bool:
    """``True`` iff a certain top-k set can be read off the intervals.

    A variable is *certainly in* the top-k if at most ``k - 1`` other
    variables can possibly exceed it; it is *certainly out* if at least ``k``
    other variables certainly exceed it.  The top-k is decided when every
    variable is certainly in or certainly out, allowing ties at the boundary
    to count as decided when the boundary intervals are single points.
    """
    items = list(intervals.items())
    for variable, interval in items:
        better_certain = sum(
            1 for other, other_interval in items
            if other != variable and other_interval.lower > interval.upper
        )
        worse_possible = sum(
            1 for other, other_interval in items
            if other != variable and other_interval.upper > interval.lower
        )
        certainly_out = better_certain >= k
        certainly_in = worse_possible < k
        if not (certainly_in or certainly_out):
            # Ties: if the undecided variables all have identical point
            # intervals the choice among them is immaterial.
            tied = [
                other_interval for other, other_interval in items
                if other != variable and other_interval.overlaps(interval)
            ]
            if interval.is_point() and all(
                    t.is_point() and t.lower == interval.lower for t in tied):
                continue
            return False
    return True


class _IchiBanRun:
    """Shared driver for ranking and top-k."""

    def __init__(self, function: DNF, heuristic: Heuristic,
                 variables: Optional[Sequence[int]] = None) -> None:
        self.state = _AnytimeState(function, heuristic)
        if variables is None:
            variables = sorted(function.variables)
        self.variables = list(variables)

    def refine_all(self) -> Dict[int, Interval]:
        """Refresh the best intervals of all tracked variables."""
        return {v: self.state.refine(v) for v in self.variables}

    def run(self, stop_condition, max_steps: Optional[int],
            timeout_seconds: Optional[float]) -> Dict[int, Interval]:
        """Refine until ``stop_condition(intervals)`` holds or budget runs out."""
        started = time.monotonic()
        steps = 0
        while True:
            intervals = self.refine_all()
            steps += 1
            if stop_condition(intervals) or self.state.is_complete():
                return intervals
            if max_steps is not None and steps >= max_steps:
                raise ApproximationTimeout(
                    f"IchiBan did not converge within {max_steps} steps"
                )
            if (timeout_seconds is not None
                    and time.monotonic() - started > timeout_seconds):
                raise ApproximationTimeout(
                    f"IchiBan did not converge within {timeout_seconds} seconds"
                )
            self.state.expand(lazy=True)


def ichiban_topk(function: DNF, k: int, epsilon: float = 0.1,
                 heuristic: Heuristic = select_most_frequent,
                 max_steps: Optional[int] = None,
                 timeout_seconds: Optional[float] = None
                 ) -> List[RankedVariable]:
    """Approximate top-k: stop when separated or every interval reaches ``epsilon``.

    Returns the ``k`` highest-ranked variables by interval midpoint.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    run = _IchiBanRun(function, heuristic)

    def stop(intervals: Dict[int, Interval]) -> bool:
        if _topk_separated(intervals, k):
            return True
        return all(interval.satisfies_relative_error(epsilon)
                   for interval in intervals.values())

    intervals = run.run(stop, max_steps, timeout_seconds)
    return _ranked(intervals)[:k]


def ichiban_topk_certain(function: DNF, k: int,
                         heuristic: Heuristic = select_most_frequent,
                         max_steps: Optional[int] = None,
                         timeout_seconds: Optional[float] = None
                         ) -> List[RankedVariable]:
    """Top-k decided with certainty (the Appendix E variant)."""
    if k <= 0:
        raise ValueError("k must be positive")
    run = _IchiBanRun(function, heuristic)
    intervals = run.run(lambda ivs: _topk_separated(ivs, k), max_steps,
                        timeout_seconds)
    return _ranked(intervals)[:k]


def ichiban_rank(function: DNF, epsilon: Optional[float] = None,
                 heuristic: Heuristic = select_most_frequent,
                 max_steps: Optional[int] = None,
                 timeout_seconds: Optional[float] = None
                 ) -> List[RankedVariable]:
    """Rank all variables by Banzhaf value.

    With ``epsilon=None`` the run continues until the intervals are pairwise
    separated or collapse to identical point values (a certain ranking up to
    ties).  With an ``epsilon`` the run may also stop once every interval
    certifies that relative error; the ranking is then by midpoints.
    """
    run = _IchiBanRun(function, heuristic)

    def certain(intervals: Dict[int, Interval]) -> bool:
        items = list(intervals.values())
        for i, left in enumerate(items):
            for right in items[i + 1:]:
                if left.overlaps(right):
                    same_point = (left.is_point() and right.is_point()
                                  and left.lower == right.lower)
                    if not same_point:
                        return False
        return True

    def stop(intervals: Dict[int, Interval]) -> bool:
        if certain(intervals):
            return True
        if epsilon is None:
            return False
        return all(interval.satisfies_relative_error(epsilon)
                   for interval in intervals.values())

    intervals = run.run(stop, max_steps, timeout_seconds)
    return _ranked(intervals)
