"""IchiBan: Banzhaf-based ranking and top-k of facts (Section 4.1).

IchiBan is a natural generalization of AdaBan: it maintains approximation
intervals for the Banzhaf values of *all* variables of the lineage and keeps
refining them (by expanding the shared partial d-tree) until the intervals
are informative enough for the task at hand:

* **top-k with certainty** -- a variable is discarded once its upper bound is
  below the lower bounds of at least ``k`` other variables; the run stops
  when only ``k`` candidates remain and their intervals are separated from
  (or equal to) the rest;
* **approximate top-k / ranking with error ``epsilon``** -- the run may
  also stop at a certified relative error: top-k once every *still
  undecided* interval certifies ``epsilon`` (decided variables need no
  tight interval to be reported correctly), full ranking once *every*
  interval does (the ranking reports an estimate per variable, so each
  one carries the guarantee); variables are then ordered by interval
  midpoints.

Refinement is *task-aware*: each round only re-evaluates bounds for the
variables whose intervals still matter for the answer -- for top-k, the
variables straddling the k-th boundary (neither certainly in nor certainly
out); for ranking, the variables still overlapping a competitor (plus, with
an ``epsilon``, those not yet certifying it).  Decided variables keep their
last certified interval, which remains sound because refinement only ever
tightens intervals.

Budget accounting matches AdaBan: ``max_steps`` counts individual bound
evaluations (one per variable refined per round), not refinement rounds, so
step budgets are comparable across the anytime algorithms.  Budgets are
checked between rounds, so the final round may overshoot by at most one
evaluation per tracked variable.  Budget exhaustion raises
:class:`IchiBanTimeout`, which carries the best-so-far intervals so callers
can degrade to an uncertified answer instead of losing the work.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.boolean.dnf import DNF
from repro.core.adaban import ApproximationTimeout, _AnytimeState
from repro.core.intervals import Interval
from repro.dtree.heuristics import Heuristic, select_most_frequent


_LN2 = math.log(2.0)


class IchiBanTimeout(ApproximationTimeout):
    """IchiBan budget exhaustion that preserves the work already done.

    Attributes
    ----------
    intervals:
        Best-so-far interval per tracked variable (always sound: every
        interval contains the exact Banzhaf value).
    steps:
        Bound evaluations performed before giving up.
    rounds:
        Refinement rounds performed before giving up.
    """

    def __init__(self, message: str, intervals: Dict[int, Interval],
                 steps: int = 0, rounds: int = 0) -> None:
        super().__init__(message)
        self.intervals = dict(intervals)
        self.steps = steps
        self.rounds = rounds


@dataclass(frozen=True)
class RankedVariable:
    """One entry of an IchiBan ranking."""

    variable: int
    interval: Interval
    estimate: Fraction

    @property
    def lower(self) -> int:
        """Lower bound of the Banzhaf interval."""
        return self.interval.lower

    @property
    def upper(self) -> int:
        """Upper bound of the Banzhaf interval."""
        return self.interval.upper


def _ranked(intervals: Dict[int, Interval]) -> List[RankedVariable]:
    """Order variables by interval midpoint (descending), ties by id."""
    entries = [
        RankedVariable(variable=v, interval=interval,
                       estimate=interval.midpoint())
        for v, interval in intervals.items()
    ]
    entries.sort(key=lambda entry: (-entry.estimate, entry.variable))
    return entries


#: Top-k decidedness classes (order matters: it is the ranking sort key).
_IN, _UNDECIDED, _OUT = 0, 1, 2


def _topk_classify(intervals: Dict[int, Interval], k: int) -> Dict[int, int]:
    """Classify every variable as certainly in / undecided / certainly out.

    A variable is *certainly in* the top-k if at most ``k - 1`` other
    variables can possibly exceed it; it is *certainly out* if at least
    ``k`` other variables certainly exceed it.
    """
    items = list(intervals.items())
    classes: Dict[int, int] = {}
    for variable, interval in items:
        better_certain = sum(
            1 for other, other_interval in items
            if other != variable and other_interval.lower > interval.upper
        )
        if better_certain >= k:
            classes[variable] = _OUT
            continue
        worse_possible = sum(
            1 for other, other_interval in items
            if other != variable and other_interval.upper > interval.lower
        )
        classes[variable] = _IN if worse_possible < k else _UNDECIDED
    return classes


def _topk_undecided(intervals: Dict[int, Interval], k: int) -> List[int]:
    """The variables whose intervals still straddle the k-th boundary."""
    return [variable
            for variable, cls in _topk_classify(intervals, k).items()
            if cls == _UNDECIDED]


def _ties_decide(intervals: Dict[int, Interval],
                 undecided: List[int]) -> bool:
    """``True`` iff every undecided variable is an immaterial point tie.

    If the undecided variables all have identical point intervals the
    choice among them is immaterial, so the top-k counts as decided.
    """
    for variable in undecided:
        interval = intervals[variable]
        if not interval.is_point():
            return False
        tied = [
            other_interval for other, other_interval in intervals.items()
            if other != variable and other_interval.overlaps(interval)
        ]
        if not all(t.is_point() and t.lower == interval.lower for t in tied):
            return False
    return True


def ranked_from_intervals(intervals: Dict[int, Interval],
                          k: Optional[int] = None) -> List[RankedVariable]:
    """Order variables by the interval evidence.

    Without ``k``: midpoint descending (ties by id).  This is sound for full
    rankings because a certified separation between two intervals implies
    their midpoints are ordered the same way.

    With ``k``: certainly-in variables first, undecided next, certainly-out
    last (midpoint order within each class), truncated to ``k``.  The
    classes matter because task-aware refinement leaves decided intervals
    wide: a certainly-out variable can retain a large midpoint, so midpoints
    alone would rank it above a certain member of the top-k.
    """
    if k is None:
        return _ranked(intervals)
    classes = _topk_classify(intervals, k)
    entries = [
        RankedVariable(variable=v, interval=interval,
                       estimate=interval.midpoint())
        for v, interval in intervals.items()
    ]
    entries.sort(key=lambda entry: (classes[entry.variable],
                                    -entry.estimate, entry.variable))
    return entries[:k]


def ranked_from_bounds(bounds: Dict[int, Tuple[int, int]],
                       k: Optional[int] = None) -> List[RankedVariable]:
    """:func:`ranked_from_intervals` over raw ``(lower, upper)`` pairs.

    Convenience for reading a ranking off engine results, whose ``bounds``
    store plain tuples (picklable for the process pool) rather than
    :class:`Interval` objects.
    """
    return ranked_from_intervals(
        {variable: Interval(lower, upper)
         for variable, (lower, upper) in bounds.items()},
        k,
    )


def float_straddlers(entries: Dict[int, Tuple[float, float]],
                     margin: int = 8) -> set:
    """Variables whose float-tier score intervals overlap another's.

    ``entries`` maps a variable to ``(log2 score, relative error bound)``
    from the arena float pass (:func:`repro.dtree.arena
    .arena_float_banzhaf`); ``margin`` widens every error bound (the
    configurable ULP margin), so callers can trade fallback frequency
    against confidence.  A variable whose widened interval
    ``[log - w, log + w]`` (``w = margin * err / ln 2`` in log2 units)
    intersects any other variable's interval cannot be ordered by float
    comparison alone and must fall back to exact evaluation; the rest
    are separated beyond floating error and rank by float order.

    Exact zeros (``log == -inf``) are exactly representable and never
    straddle; an unbounded error (``err == inf``, a near-cancellation in
    the pass) straddles everything.
    """
    items = []
    for variable, (log, err) in entries.items():
        if log == -math.inf:
            continue
        width = margin * err / _LN2
        items.append((log - width, log + width, variable))
    items.sort()
    straddlers: set = set()
    for i, (_, upper, variable) in enumerate(items):
        for j in range(i + 1, len(items)):
            other_lower, _, other = items[j]
            if other_lower > upper:
                break
            straddlers.add(variable)
            straddlers.add(other)
    return straddlers


#: A per-round controller: consumes the fresh intervals, returns
#: ``(done, targets)`` -- whether the run may stop, and otherwise which
#: variables are worth refining next round.  Bundling the two decisions
#: lets each round pay for one O(n^2) interval sweep instead of separate
#: stop and schedule passes.
Controller = Callable[[Dict[int, Interval]], Tuple[bool, List[int]]]


def _topk_controller(k: int, epsilon: Optional[float]) -> Controller:
    """The controller of a top-k run; ``epsilon=None`` demands certainty.

    Refines only the variables straddling the k-th boundary; stops on full
    separation (ties at the boundary count once their intervals are single
    points) or -- with an ``epsilon`` -- once every still-undecided
    interval certifies that relative error (decided variables need no
    tight interval to be reported correctly).
    """
    def controller(intervals: Dict[int, Interval]
                   ) -> Tuple[bool, List[int]]:
        undecided = _topk_undecided(intervals, k)
        if _ties_decide(intervals, undecided):
            return True, []
        if epsilon is not None and all(
                intervals[v].satisfies_relative_error(epsilon)
                for v in undecided):
            return True, []
        return False, undecided

    return controller


def _rank_controller(epsilon: Optional[float]) -> Controller:
    """The controller of a full-ranking run.

    Refines the variables still overlapping a competitor (plus, with an
    ``epsilon``, those not yet certifying it); stops when all pairs are
    separated or identical points, or when every interval reaches
    ``epsilon``.
    """
    def controller(intervals: Dict[int, Interval]
                   ) -> Tuple[bool, List[int]]:
        items = list(intervals.items())
        contended = [
            variable for variable, interval in items
            if any(
                other != variable and other_interval.overlaps(interval)
                and not (interval.is_point() and other_interval.is_point()
                         and other_interval.lower == interval.lower)
                for other, other_interval in items
            )
        ]
        if not contended:
            return True, []
        if epsilon is None:
            return False, contended
        loose = [variable for variable, interval in items
                 if not interval.satisfies_relative_error(epsilon)]
        if not loose:
            return True, []
        return False, sorted(set(contended) | set(loose))

    return controller


class _IchiBanRun:
    """Shared driver for ranking and top-k (used directly by the engine).

    ``compiler`` resumes an already (partially) expanded compilation of
    the same function — e.g. the frontier of a persisted partial d-tree —
    so the run's first refinement round starts from the resumed tree's
    bounds instead of the trivial ones.
    """

    def __init__(self, function: DNF, heuristic: Heuristic,
                 variables: Optional[Sequence[int]] = None,
                 compiler=None) -> None:
        self.state = _AnytimeState(function, heuristic, compiler=compiler)
        if variables is None:
            variables = sorted(function.variables)
        self.variables = list(variables)
        self.steps = 0
        self.rounds = 0

    def refine(self, targets: Sequence[int]) -> Dict[int, Interval]:
        """Refresh the intervals of ``targets``; return all best intervals."""
        for variable in targets:
            self.state.refine(variable)
            self.steps += 1
        self.rounds += 1
        return {v: self.state.best[v] for v in self.variables}

    def run(self, controller: Controller, max_steps: Optional[int],
            timeout_seconds: Optional[float]) -> Dict[int, Interval]:
        """Refine until the controller is satisfied or the budget runs out.

        The controller sees the fresh intervals once per round and decides
        both whether to stop and which variables to refine next (an empty
        target list falls back to refining everything, so progress never
        stalls); the first round always refines everything so every
        variable has an interval.  ``max_steps`` counts bound evaluations
        (AdaBan's unit).  Budget exhaustion raises :class:`IchiBanTimeout`
        carrying the best-so-far intervals.
        """
        started = time.monotonic()
        intervals = self.refine(self.variables)
        while True:
            done, targets = controller(intervals)
            if done or self.state.is_complete():
                return intervals
            if max_steps is not None and self.steps >= max_steps:
                raise IchiBanTimeout(
                    f"IchiBan did not converge within {max_steps} "
                    "bound evaluations",
                    intervals, steps=self.steps, rounds=self.rounds,
                )
            if (timeout_seconds is not None
                    and time.monotonic() - started > timeout_seconds):
                raise IchiBanTimeout(
                    f"IchiBan did not converge within {timeout_seconds} "
                    "seconds",
                    intervals, steps=self.steps, rounds=self.rounds,
                )
            self.state.expand(lazy=True)
            intervals = self.refine(targets or self.variables)


def ichiban_topk(function: DNF, k: int, epsilon: float = 0.1,
                 heuristic: Heuristic = select_most_frequent,
                 max_steps: Optional[int] = None,
                 timeout_seconds: Optional[float] = None
                 ) -> List[RankedVariable]:
    """Approximate top-k: stop when separated or the contenders reach ``epsilon``.

    Returns the ``k`` highest-ranked variables (certain members first, then
    boundary contenders by interval midpoint).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    run = _IchiBanRun(function, heuristic)
    intervals = run.run(_topk_controller(k, epsilon), max_steps,
                        timeout_seconds)
    return ranked_from_intervals(intervals, k)


def ichiban_topk_certain(function: DNF, k: int,
                         heuristic: Heuristic = select_most_frequent,
                         max_steps: Optional[int] = None,
                         timeout_seconds: Optional[float] = None
                         ) -> List[RankedVariable]:
    """Top-k decided with certainty (the Appendix E variant)."""
    if k <= 0:
        raise ValueError("k must be positive")
    run = _IchiBanRun(function, heuristic)
    intervals = run.run(_topk_controller(k, epsilon=None), max_steps,
                        timeout_seconds)
    return ranked_from_intervals(intervals, k)


def ichiban_rank(function: DNF, epsilon: Optional[float] = None,
                 heuristic: Heuristic = select_most_frequent,
                 max_steps: Optional[int] = None,
                 timeout_seconds: Optional[float] = None
                 ) -> List[RankedVariable]:
    """Rank all variables by Banzhaf value.

    With ``epsilon=None`` the run continues until the intervals are pairwise
    separated or collapse to identical point values (a certain ranking up to
    ties).  With an ``epsilon`` the run may also stop once every interval
    certifies that relative error; the ranking is then by midpoints.
    """
    run = _IchiBanRun(function, heuristic)
    intervals = run.run(_rank_controller(epsilon), max_steps,
                        timeout_seconds)
    return _ranked(intervals)
