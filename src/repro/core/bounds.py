"""Lower/upper bounds on Banzhaf values and model counts for partial d-trees.

This implements the ``bounds`` procedure of Fig. 2 in the paper, generalized
to n-ary d-tree nodes.  At a non-trivial leaf (an undecomposed positive DNF
function) the bounds come from the iDNF syntheses ``L`` and ``U``
(Proposition 12); at trivial leaves the exact values are used; at inner nodes
the children's bounds are combined by the monotone versions of Eq. (4)-(9):
lower bounds of positively-occurring terms and upper bounds of
negatively-occurring terms give a lower bound, and vice versa.

Bounds are cached on the nodes (the paper's optimization (2)): the
incremental compiler invalidates exactly the path from an expanded leaf to
the root, so re-evaluating the bounds after an expansion touches only that
path.  All three evaluations are **iterative** (explicit-stack postorder
that stops descending at cached subtrees), matching the counting passes in
:mod:`repro.core.exaban`: deep Shannon chains in a partial tree never hit
the interpreter recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.boolean.dnf import ConstantTrue, DNF
from repro.boolean.idnf import idnf_model_count, lower_idnf, upper_idnf
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)

_COUNT_KEY = "count_bounds"


@dataclass(frozen=True)
class BanzhafBounds:
    """Bounds on the Banzhaf value of one variable and on the model count.

    Attributes mirror the quadruple ``(Lb, L#, Ub, U#)`` of Fig. 2.
    """

    banzhaf_lower: int
    count_lower: int
    banzhaf_upper: int
    count_upper: int

    def __post_init__(self) -> None:
        if self.banzhaf_lower > self.banzhaf_upper:
            raise ValueError("banzhaf lower bound exceeds upper bound")
        if self.count_lower > self.count_upper:
            raise ValueError("count lower bound exceeds upper bound")

    def is_exact(self) -> bool:
        """``True`` iff both intervals are single points."""
        return (self.banzhaf_lower == self.banzhaf_upper
                and self.count_lower == self.count_upper)


def _count_bounds_node(node: DTreeNode) -> tuple[int, int]:
    """Count bounds of one node; inner nodes read their children's cache."""
    if isinstance(node, TrueLeaf):
        return (1 << len(node.domain),) * 2
    if isinstance(node, FalseLeaf):
        return (0, 0)
    if isinstance(node, LiteralLeaf):
        return (1, 1)
    if isinstance(node, DNFLeaf):
        lower = idnf_model_count(lower_idnf(node.function))
        upper = idnf_model_count(upper_idnf(node.function))
        return (lower, upper)
    if isinstance(node, DecompAnd):
        lower, upper = 1, 1
        for child in node.children():
            child_lower, child_upper = child.cache_get(_COUNT_KEY)
            lower *= child_lower
            upper *= child_upper
        return (lower, upper)
    if isinstance(node, DecompOr):
        non_lower, non_upper = 1, 1
        for child in node.children():
            child_lower, child_upper = child.cache_get(_COUNT_KEY)
            space = 1 << len(child.domain)
            non_lower *= space - child_upper
            non_upper *= space - child_lower
        space = 1 << len(node.domain)
        return (space - non_upper, space - non_lower)
    if isinstance(node, ExclusiveOr):
        lower = sum(child.cache_get(_COUNT_KEY)[0]
                    for child in node.children())
        upper = sum(child.cache_get(_COUNT_KEY)[1]
                    for child in node.children())
        return (lower, upper)
    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def count_bounds(node: DTreeNode) -> tuple[int, int]:
    """Lower and upper bounds on the model count of ``node`` (cached)."""
    cached = node.cache_get(_COUNT_KEY)
    if cached is not None:
        return cached  # type: ignore[return-value]
    pending: List[DTreeNode] = [node]
    postorder: List[DTreeNode] = []
    while pending:
        current = pending.pop()
        if current.cache_get(_COUNT_KEY) is not None:
            continue
        postorder.append(current)
        pending.extend(current.children())
    for current in reversed(postorder):
        if current.cache_get(_COUNT_KEY) is None:
            current.cache_set(_COUNT_KEY, _count_bounds_node(current))
    return node.cache_get(_COUNT_KEY)  # type: ignore[return-value]


def _cofactor_count_bounds_node(node: DTreeNode, variable: int,
                                key: object) -> tuple[int, int]:
    """Cofactor count bounds of one node (children's values pre-cached)."""
    if isinstance(node, TrueLeaf):
        return (1 << (len(node.domain) - 1),) * 2
    if isinstance(node, FalseLeaf):
        return (0, 0)
    if isinstance(node, LiteralLeaf):
        if node.variable == variable:
            value = 1 if node.negated else 0
        else:
            value = 1
        return (value, value)
    if isinstance(node, DNFLeaf):
        # cofactor(x, False) drops the clauses containing x (none, when x
        # is silent) and removes x from the domain either way -- one code
        # path for both cases, served by the bitset kernel's mask surgery.
        cofactor = node.function.cofactor(variable, False)
        return (idnf_model_count(lower_idnf(cofactor)),
                idnf_model_count(upper_idnf(cofactor)))
    if isinstance(node, DecompAnd):
        lower, upper = 1, 1
        for child in node.children():
            if variable in child.domain:
                child_lower, child_upper = child.cache_get(key)
            else:
                child_lower, child_upper = count_bounds(child)
            lower *= child_lower
            upper *= child_upper
        return (lower, upper)
    if isinstance(node, DecompOr):
        non_lower, non_upper = 1, 1
        for child in node.children():
            if variable in child.domain:
                child_lower, child_upper = child.cache_get(key)
                space = 1 << (len(child.domain) - 1)
            else:
                child_lower, child_upper = count_bounds(child)
                space = 1 << len(child.domain)
            non_lower *= space - child_upper
            non_upper *= space - child_lower
        space = 1 << (len(node.domain) - 1)
        return (space - non_upper, space - non_lower)
    if isinstance(node, ExclusiveOr):
        lower = sum(child.cache_get(key)[0] for child in node.children())
        upper = sum(child.cache_get(key)[1] for child in node.children())
        return (lower, upper)
    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def cofactor_count_bounds(node: DTreeNode, variable: int) -> tuple[int, int]:
    """Bounds on ``#phi[x := 0]`` over the node's domain minus ``x`` (cached).

    This powers the paper's optimization (4) in Section 3.2.4: from bounds on
    ``#phi`` and ``#phi[x := 0]`` one obtains Banzhaf bounds via
    ``Banzhaf(phi, x) = #phi - 2 * #phi[x := 0]``, which are often tighter
    than the direct Proposition 12 bounds.  Only called for nodes whose
    domain contains ``variable``.
    """
    key = ("cofactor_count_bounds", variable)
    cached = node.cache_get(key)
    if cached is not None:
        return cached  # type: ignore[return-value]
    pending: List[DTreeNode] = [node]
    postorder: List[DTreeNode] = []
    while pending:
        current = pending.pop()
        if current.cache_get(key) is not None:
            continue
        postorder.append(current)
        for child in current.children():
            if variable in child.domain:
                pending.append(child)
    for current in reversed(postorder):
        if current.cache_get(key) is None:
            current.cache_set(
                key, _cofactor_count_bounds_node(current, variable, key))
    return node.cache_get(key)  # type: ignore[return-value]


def _leaf_banzhaf_bounds(function: DNF, variable: int) -> tuple[int, int]:
    """Proposition 12 bounds for a variable in an undecomposed DNF leaf."""
    if not function.contains_variable(variable):
        return 0, 0
    negative = function.cofactor(variable, False)
    lower_negative = idnf_model_count(lower_idnf(negative))
    upper_negative = idnf_model_count(upper_idnf(negative))
    try:
        positive = function.cofactor(variable, True)
    except ConstantTrue as constant:
        exact_positive = 1 << len(constant.domain)
        lower_positive = upper_positive = exact_positive
    else:
        lower_positive = idnf_model_count(lower_idnf(positive))
        upper_positive = idnf_model_count(upper_idnf(positive))
    # The function is positive, so the Banzhaf value is non-negative; clamping
    # the lower bound at zero keeps it valid and can only tighten it.
    lower = max(0, lower_positive - upper_negative)
    upper = upper_positive - lower_negative
    return lower, max(lower, upper)


def _bounds_node(node: DTreeNode, variable: int, key: object) -> BanzhafBounds:
    """Fig. 2 bounds of one node (descended children's bounds pre-cached)."""
    count_lower, count_upper = count_bounds(node)

    if isinstance(node, (TrueLeaf, FalseLeaf)):
        result = BanzhafBounds(0, count_lower, 0, count_upper)
    elif isinstance(node, LiteralLeaf):
        if node.variable == variable:
            value = -1 if node.negated else 1
        else:
            value = 0
        result = BanzhafBounds(value, 1, value, 1)
    elif isinstance(node, DNFLeaf):
        lower, upper = _leaf_banzhaf_bounds(node.function, variable)
        result = BanzhafBounds(lower, count_lower, upper, count_upper)
    elif isinstance(node, (DecompAnd, DecompOr)):
        result = _decomposable_bounds(node, variable, key,
                                      count_lower, count_upper)
    elif isinstance(node, ExclusiveOr):
        lower = 0
        upper = 0
        for child in node.children():
            child_bounds = child.cache_get(key)
            lower += child_bounds.banzhaf_lower
            upper += child_bounds.banzhaf_upper
        result = BanzhafBounds(lower, count_lower, upper, count_upper)
    else:
        raise TypeError(f"unknown d-tree node type {type(node).__name__}")

    if variable in node.domain and not isinstance(node, LiteralLeaf):
        # Optimization (4): intersect with the bounds derived from
        # Banzhaf(phi, x) = #phi - 2 * #phi[x := 0].
        cof_lower, cof_upper = cofactor_count_bounds(node, variable)
        alt_lower = count_lower - 2 * cof_upper
        alt_upper = count_upper - 2 * cof_lower
        lower = max(result.banzhaf_lower, alt_lower)
        upper = min(result.banzhaf_upper, alt_upper)
        result = BanzhafBounds(lower, count_lower, upper, count_upper)

    return result


def bounds_for_variable(node: DTreeNode, variable: int) -> BanzhafBounds:
    """The ``bounds`` procedure of Fig. 2 for one variable (cached per node)."""
    key = ("banzhaf_bounds", variable)
    cached = node.cache_get(key)
    if cached is not None:
        return cached  # type: ignore[return-value]
    pending: List[DTreeNode] = [node]
    postorder: List[DTreeNode] = []
    while pending:
        current = pending.pop()
        if current.cache_get(key) is not None:
            continue
        postorder.append(current)
        # Only subtrees containing the variable contribute Banzhaf bounds
        # (a decomposable node scales exactly one child's bounds; exclusive
        # children all share the parent domain).
        for child in current.children():
            if variable in child.domain:
                pending.append(child)
    for current in reversed(postorder):
        if current.cache_get(key) is None:
            current.cache_set(key, _bounds_node(current, variable, key))
    return node.cache_get(key)  # type: ignore[return-value]


def _decomposable_bounds(node: DTreeNode, variable: int, key: object,
                         count_lower: int, count_upper: int) -> BanzhafBounds:
    """Combine children bounds at an independent AND/OR node.

    The variable occurs in at most one child (disjoint domains); the bounds of
    that child are scaled by products over the siblings, taking lower bounds
    of terms that occur positively and upper bounds of terms that occur
    negatively (and vice versa for the upper bound).
    """
    children = node.children()
    target_index = None
    for index, child in enumerate(children):
        if variable in child.domain:
            target_index = index
            break
    if target_index is None:
        return BanzhafBounds(0, count_lower, 0, count_upper)

    target_bounds = children[target_index].cache_get(key)
    lower_factor = 1
    upper_factor = 1
    for index, child in enumerate(children):
        if index == target_index:
            continue
        child_lower, child_upper = count_bounds(child)
        if isinstance(node, DecompAnd):
            lower_factor *= child_lower
            upper_factor *= child_upper
        else:  # DecompOr: the sibling term is the non-model count.
            space = 1 << len(child.domain)
            lower_factor *= space - child_upper
            upper_factor *= space - child_lower
    # Interval product of [Lb, Ub] (possibly spanning zero, e.g. for the
    # negated literal introduced by Shannon expansion) with the non-negative
    # sibling factor interval [lower_factor, upper_factor].
    candidates = (
        target_bounds.banzhaf_lower * lower_factor,
        target_bounds.banzhaf_lower * upper_factor,
        target_bounds.banzhaf_upper * lower_factor,
        target_bounds.banzhaf_upper * upper_factor,
    )
    return BanzhafBounds(min(candidates), count_lower,
                         max(candidates), count_upper)
