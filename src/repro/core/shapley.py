"""Exact Shapley values of variables in positive DNF functions.

The paper compares Banzhaf-based and Shapley-based attribution (Section 6 and
Appendix D).  Both values are determined by the *critical-set counts*
``#kC(x)``: the number of sets ``Y`` of size ``k`` (not containing ``x``)
with ``phi[Y] = 0`` and ``phi[Y + x] = 1``:

* ``Banzhaf(phi, x) = sum_k #kC(x)``
* ``Shapley(phi, x) = sum_k k! (n-k-1)! / n! * #kC(x)``

This module computes the critical-set counts exactly over a complete d-tree
by propagating *size-indexed* model-count vectors: for every node we track,
for each ``k``, how many models set exactly ``k`` variables of the node's
domain to true, for the function itself and for its two cofactors on the
target variable.  The combination rules mirror ExaBan's, lifted from scalars
to vectors (convolutions at decomposable nodes, sums at exclusive nodes).
"""

from __future__ import annotations

from fractions import Fraction
from math import comb, factorial
from typing import Dict, List, Optional, Sequence

from repro.boolean.assignments import critical_set_counts
from repro.boolean.dnf import DNF
from repro.dtree.compile import CompilationBudget, compile_dnf
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


def _convolve(left: Sequence[int], right: Sequence[int]) -> List[int]:
    """Convolution of two integer vectors."""
    result = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                result[i + j] += a * b
    return result


def _binomial_vector(n: int) -> List[int]:
    """The vector ``[C(n,0), ..., C(n,n)]`` (size profile of the constant 1)."""
    return [comb(n, k) for k in range(n + 1)]


def _complement(vector: Sequence[int], n: int) -> List[int]:
    """Turn a size-indexed model vector over ``n`` variables into non-models."""
    return [comb(n, k) - vector[k] for k in range(n + 1)]


class _SizeVectors:
    """Size-indexed model-count vectors of a node and of its x-cofactors.

    ``models[k]`` counts models with ``k`` true variables over the node's
    domain.  ``positive``/``negative`` count models of the cofactors
    ``phi[x:=1]`` / ``phi[x:=0]`` by size over the domain *minus x*; when the
    node's domain does not contain ``x`` both equal ``models``.
    """

    __slots__ = ("models", "positive", "negative", "domain_size", "has_x")

    def __init__(self, models: List[int], positive: List[int],
                 negative: List[int], domain_size: int, has_x: bool) -> None:
        self.models = models
        self.positive = positive
        self.negative = negative
        self.domain_size = domain_size
        self.has_x = has_x


def _vectors(node: DTreeNode, variable: int) -> _SizeVectors:
    domain_size = len(node.domain)
    has_x = variable in node.domain

    if isinstance(node, TrueLeaf):
        models = _binomial_vector(domain_size)
        cof = _binomial_vector(domain_size - 1) if has_x else models
        return _SizeVectors(models, cof, list(cof), domain_size, has_x)

    if isinstance(node, FalseLeaf):
        models = [0] * (domain_size + 1)
        cof = [0] * domain_size if has_x else models
        return _SizeVectors(models, cof, list(cof), domain_size, has_x)

    if isinstance(node, LiteralLeaf):
        if node.negated:
            models = [1, 0]
        else:
            models = [0, 1]
        if node.variable == variable:
            positive = [0] if node.negated else [1]
            negative = [1] if node.negated else [0]
            return _SizeVectors(models, positive, negative, 1, True)
        return _SizeVectors(models, list(models), list(models), 1, False)

    if isinstance(node, DNFLeaf):
        raise ValueError("Shapley computation requires a complete d-tree")

    children = [_vectors(child, variable) for child in node.children()]

    if isinstance(node, DecompAnd):
        return _combine_product(children, domain_size, has_x, conjunction=True)
    if isinstance(node, DecompOr):
        return _combine_product(children, domain_size, has_x, conjunction=False)
    if isinstance(node, ExclusiveOr):
        models = [0] * (domain_size + 1)
        cof_len = domain_size if has_x else domain_size + 1
        positive = [0] * cof_len
        negative = [0] * cof_len
        for child in children:
            for k, value in enumerate(child.models):
                models[k] += value
            for k, value in enumerate(child.positive):
                positive[k] += value
            for k, value in enumerate(child.negative):
                negative[k] += value
        return _SizeVectors(models, positive, negative, domain_size, has_x)
    raise TypeError(f"unknown d-tree node type {type(node).__name__}")


def _combine_product(children: List[_SizeVectors], domain_size: int,
                     has_x: bool, conjunction: bool) -> _SizeVectors:
    """Combine children of a decomposable node by (non-)model convolution."""

    def product(select) -> List[int]:
        result = [1]
        for child in children:
            result = _convolve(result, select(child))
        return result

    if conjunction:
        models = product(lambda c: c.models)
        positive = product(lambda c: c.positive if c.has_x else c.models)
        negative = product(lambda c: c.negative if c.has_x else c.models)
        return _SizeVectors(models, positive, negative, domain_size, has_x)

    # Disjunction of independent children: non-models convolve.
    non_models = product(lambda c: _complement(c.models, c.domain_size))
    models = [comb(domain_size, k) - non_models[k]
              for k in range(domain_size + 1)]
    cof_size = domain_size - 1 if has_x else domain_size

    def cof_non_models(select) -> List[int]:
        result = [1]
        for child in children:
            if child.has_x:
                vec = select(child)
                result = _convolve(result, _complement_raw(vec, child.domain_size - 1))
            else:
                result = _convolve(
                    result, _complement(child.models, child.domain_size))
        return result

    positive_non = cof_non_models(lambda c: c.positive)
    negative_non = cof_non_models(lambda c: c.negative)
    positive = [comb(cof_size, k) - positive_non[k] for k in range(cof_size + 1)]
    negative = [comb(cof_size, k) - negative_non[k] for k in range(cof_size + 1)]
    return _SizeVectors(models, positive, negative, domain_size, has_x)


def _complement_raw(vector: Sequence[int], n: int) -> List[int]:
    """Complement a vector known to be over ``n`` variables."""
    return [comb(n, k) - vector[k] for k in range(n + 1)]


def critical_counts_exact(function: DNF, variable: int,
                          heuristic: Heuristic = select_most_frequent,
                          budget: CompilationBudget | None = None,
                          tree: DTreeNode | None = None) -> List[int]:
    """Exact critical-set counts ``#kC`` of ``variable`` via the d-tree.

    Entry ``k`` counts the critical sets of size ``k``; the list has
    ``n`` entries for a function over ``n`` variables (sizes 0..n-1).
    ``tree`` supplies an already compiled *complete* d-tree of the same
    function, skipping compilation entirely (the engine's shared-artifact
    path); otherwise one is compiled under ``budget``.
    """
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    if tree is None:
        tree = compile_dnf(function, heuristic=heuristic, budget=budget)
    vectors = _vectors(tree, variable)
    n = function.num_variables()
    counts = []
    for k in range(n):
        positive = vectors.positive[k] if k < len(vectors.positive) else 0
        negative = vectors.negative[k] if k < len(vectors.negative) else 0
        counts.append(positive - negative)
    return counts


def shapley_exact(function: DNF, variable: int,
                  heuristic: Heuristic = select_most_frequent,
                  budget: CompilationBudget | None = None,
                  tree: DTreeNode | None = None) -> Fraction:
    """Exact Shapley value of ``variable`` in a positive DNF function."""
    counts = critical_counts_exact(function, variable, heuristic=heuristic,
                                   budget=budget, tree=tree)
    n = function.num_variables()
    total = Fraction(0)
    n_factorial = factorial(n)
    for k, count in enumerate(counts):
        if count:
            coefficient = Fraction(factorial(k) * factorial(n - k - 1),
                                   n_factorial)
            total += coefficient * count
    return total


def shapley_all(function: DNF,
                heuristic: Heuristic = select_most_frequent,
                budget: CompilationBudget | None = None,
                tree: DTreeNode | None = None) -> Dict[int, Fraction]:
    """Exact Shapley values of all variables occurring in the function.

    The d-tree is compiled **once** and shared across variables (it is a
    function of the lineage alone); pass ``tree`` to reuse a complete
    d-tree compiled by another method — the compiled-lineage artifact
    tier — and skip compilation here entirely.
    """
    if tree is None:
        tree = compile_dnf(function, heuristic=heuristic, budget=budget)
    return {
        variable: shapley_exact(function, variable, heuristic=heuristic,
                                budget=budget, tree=tree)
        for variable in sorted(function.variables)
    }


def shapley_brute_force(function: DNF, variable: int) -> Fraction:
    """Definitional Shapley value by exhaustive enumeration (testing only)."""
    counts = critical_set_counts(function, variable)
    n = function.num_variables()
    n_factorial = factorial(n)
    total = Fraction(0)
    for k, count in enumerate(counts):
        if count:
            total += Fraction(factorial(k) * factorial(n - k - 1),
                              n_factorial) * count
    return total


def banzhaf_from_critical_counts(counts: Sequence[int]) -> int:
    """Banzhaf value as the plain sum of critical-set counts (Eq. 16)."""
    return sum(counts)


def shapley_from_critical_counts(counts: Sequence[int],
                                 num_variables: Optional[int] = None
                                 ) -> Fraction:
    """Shapley value from critical-set counts (Eq. 17)."""
    n = num_variables if num_variables is not None else len(counts)
    n_factorial = factorial(n)
    total = Fraction(0)
    for k, count in enumerate(counts):
        if count:
            total += Fraction(factorial(k) * factorial(n - k - 1),
                              n_factorial) * count
    return total
