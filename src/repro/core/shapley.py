"""Exact Shapley values of variables in positive DNF functions.

The paper compares Banzhaf-based and Shapley-based attribution (Section 6 and
Appendix D).  Both values are determined by the *critical-set counts*
``#kC(x)``: the number of sets ``Y`` of size ``k`` (not containing ``x``)
with ``phi[Y] = 0`` and ``phi[Y + x] = 1``:

* ``Banzhaf(phi, x) = sum_k #kC(x)``
* ``Shapley(phi, x) = sum_k k! (n-k-1)! / n! * #kC(x)``

This module computes the critical-set counts exactly over a complete d-tree
by propagating *size-indexed* model-count vectors: for every node we track,
for each ``k``, how many models set exactly ``k`` variables of the node's
domain to true, for the function itself and for its two cofactors on the
target variable.  The combination rules mirror ExaBan's, lifted from scalars
to vectors (convolutions at decomposable nodes, sums at exclusive nodes).

The evaluation is split into two **iterative** passes (explicit stacks --
deep Shannon chains never touch the recursion limit):

1. a variable-independent *models* pass filling a node-id-keyed memo with
   each subtree's size-indexed model vector -- computed **once per tree**
   and shared across all variables (``shapley_all`` over one compiled
   artifact never recounts a subtree);
2. a per-variable *cofactor* pass confined to the nodes whose domain
   contains the variable (at a decomposable node only one child does), with
   every untouched sibling read from the shared memo.

:func:`critical_counts_exact` runs both passes over the **arena** backend
(:mod:`repro.dtree.arena`): the models column lives on the flattened tree
(shared through the root cache) and the cofactor pass is a pair of plain
index loops.  The object-tree walks ``_fill_models`` /
``_cofactor_vectors`` are kept as the differential baseline.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb, factorial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolean.assignments import critical_set_counts
from repro.boolean.dnf import DNF
from repro.dtree.arena import arena_cofactor_vectors, arena_models, arena_of
from repro.dtree.compile import CompilationBudget, compile_dnf
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)

#: Node-id -> size-indexed model-count vector of the subtree.  Valid while
#: the tree is alive and unmutated (complete artifacts guarantee both).
ModelsMemo = Dict[int, List[int]]


def _convolve(left: Sequence[int], right: Sequence[int]) -> List[int]:
    """Convolution of two integer vectors."""
    result = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                result[i + j] += a * b
    return result


def _binomial_vector(n: int) -> List[int]:
    """The vector ``[C(n,0), ..., C(n,n)]`` (size profile of the constant 1)."""
    return [comb(n, k) for k in range(n + 1)]


def _complement(vector: Sequence[int], n: int) -> List[int]:
    """Turn a size-indexed model vector over ``n`` variables into non-models."""
    return [comb(n, k) - vector[k] for k in range(n + 1)]


def _fill_models(root: DTreeNode, models: ModelsMemo) -> None:
    """Fill ``models`` with the size-indexed model vector of every subtree.

    Iterative postorder; subtrees already present in the memo are skipped
    without descending.
    """
    pending: List[DTreeNode] = [root]
    postorder: List[DTreeNode] = []
    while pending:
        node = pending.pop()
        if id(node) in models:
            continue
        postorder.append(node)
        pending.extend(node.children())
    for node in reversed(postorder):
        key = id(node)
        if key in models:
            continue
        domain_size = len(node.domain)
        if isinstance(node, TrueLeaf):
            vector = _binomial_vector(domain_size)
        elif isinstance(node, FalseLeaf):
            vector = [0] * (domain_size + 1)
        elif isinstance(node, LiteralLeaf):
            vector = [1, 0] if node.negated else [0, 1]
        elif isinstance(node, DNFLeaf):
            raise ValueError("Shapley computation requires a complete d-tree")
        elif isinstance(node, DecompAnd):
            vector = [1]
            for child in node.children():
                vector = _convolve(vector, models[id(child)])
        elif isinstance(node, DecompOr):
            non_models = [1]
            for child in node.children():
                non_models = _convolve(
                    non_models,
                    _complement(models[id(child)], len(child.domain)))
            vector = [comb(domain_size, k) - non_models[k]
                      for k in range(domain_size + 1)]
        elif isinstance(node, ExclusiveOr):
            vector = [0] * (domain_size + 1)
            for child in node.children():
                for k, value in enumerate(models[id(child)]):
                    vector[k] += value
        else:
            raise TypeError(f"unknown d-tree node type {type(node).__name__}")
        models[key] = vector


def _cofactor_vectors(root: DTreeNode, variable: int, models: ModelsMemo
                      ) -> Tuple[List[int], List[int]]:
    """Size vectors of ``phi[x:=1]`` / ``phi[x:=0]`` over ``domain - x``.

    ``root.domain`` must contain ``variable``.  Only nodes containing the
    variable are visited (one child per decomposable node, every child of
    an exclusive node); sibling subtrees come from the shared ``models``
    memo untouched.
    """
    pending: List[DTreeNode] = [root]
    postorder: List[DTreeNode] = []
    while pending:
        node = pending.pop()
        postorder.append(node)
        for child in node.children():
            if variable in child.domain:
                pending.append(child)
    vectors: Dict[int, Tuple[List[int], List[int]]] = {}
    for node in reversed(postorder):
        domain_size = len(node.domain)
        if isinstance(node, TrueLeaf):
            cof = _binomial_vector(domain_size - 1)
            result = (cof, list(cof))
        elif isinstance(node, FalseLeaf):
            zeros = [0] * domain_size
            result = (zeros, list(zeros))
        elif isinstance(node, LiteralLeaf):
            # Only x-literals can appear here (a literal's domain is {x}).
            positive = [0] if node.negated else [1]
            negative = [1] if node.negated else [0]
            result = (positive, negative)
        elif isinstance(node, DNFLeaf):
            raise ValueError("Shapley computation requires a complete d-tree")
        elif isinstance(node, (DecompAnd, DecompOr)):
            conjunction = isinstance(node, DecompAnd)
            positive = [1]
            negative = [1]
            for child in node.children():
                has_x = variable in child.domain
                if has_x:
                    child_positive, child_negative = vectors[id(child)]
                    child_n = len(child.domain) - 1
                else:
                    child_positive = child_negative = models[id(child)]
                    child_n = len(child.domain)
                if conjunction:
                    positive = _convolve(positive, child_positive)
                    negative = _convolve(negative, child_negative)
                else:
                    positive = _convolve(
                        positive, _complement(child_positive, child_n))
                    negative = _convolve(
                        negative, _complement(child_negative, child_n))
            if not conjunction:
                cof_size = domain_size - 1
                positive = [comb(cof_size, k) - positive[k]
                            for k in range(cof_size + 1)]
                negative = [comb(cof_size, k) - negative[k]
                            for k in range(cof_size + 1)]
            result = (positive, negative)
        elif isinstance(node, ExclusiveOr):
            cof_size = domain_size - 1
            positive = [0] * (cof_size + 1)
            negative = [0] * (cof_size + 1)
            for child in node.children():
                child_positive, child_negative = vectors[id(child)]
                for k, value in enumerate(child_positive):
                    positive[k] += value
                for k, value in enumerate(child_negative):
                    negative[k] += value
            result = (positive, negative)
        else:
            raise TypeError(f"unknown d-tree node type {type(node).__name__}")
        vectors[id(node)] = result
    return vectors[id(root)]


def critical_counts_exact(function: DNF, variable: int,
                          heuristic: Heuristic = select_most_frequent,
                          budget: CompilationBudget | None = None,
                          tree: DTreeNode | None = None,
                          models: Optional[ModelsMemo] = None) -> List[int]:
    """Exact critical-set counts ``#kC`` of ``variable`` via the d-tree.

    Entry ``k`` counts the critical sets of size ``k``; the list has
    ``n`` entries for a function over ``n`` variables (sizes 0..n-1).
    ``tree`` supplies an already compiled *complete* d-tree of the same
    function, skipping compilation entirely (the engine's shared-artifact
    path); otherwise one is compiled under ``budget``.  ``models`` is the
    optional shared size-vector memo (filled on first use, reused across
    variables of the same tree).
    """
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    if tree is None:
        tree = compile_dnf(function, heuristic=heuristic, budget=budget)
    # Arena path: the variable-independent models pass lives in the
    # arena's ``models`` payload column (computed once per tree, shared
    # across variables and across calls through the root cache); the
    # caller's node-id memo is kept as a mirror for the object-tree
    # baselines below.
    arena = arena_of(tree)
    column = arena_models(arena)
    if models is not None and id(tree) not in models:
        for row, node in enumerate(arena.nodes):
            models[id(node)] = column[row]
    positive, negative = arena_cofactor_vectors(arena, variable)
    n = function.num_variables()
    counts = []
    for k in range(n):
        pos = positive[k] if k < len(positive) else 0
        neg = negative[k] if k < len(negative) else 0
        counts.append(pos - neg)
    return counts


def shapley_exact(function: DNF, variable: int,
                  heuristic: Heuristic = select_most_frequent,
                  budget: CompilationBudget | None = None,
                  tree: DTreeNode | None = None,
                  models: Optional[ModelsMemo] = None) -> Fraction:
    """Exact Shapley value of ``variable`` in a positive DNF function."""
    counts = critical_counts_exact(function, variable, heuristic=heuristic,
                                   budget=budget, tree=tree, models=models)
    n = function.num_variables()
    total = Fraction(0)
    n_factorial = factorial(n)
    for k, count in enumerate(counts):
        if count:
            coefficient = Fraction(factorial(k) * factorial(n - k - 1),
                                   n_factorial)
            total += coefficient * count
    return total


def shapley_all(function: DNF,
                heuristic: Heuristic = select_most_frequent,
                budget: CompilationBudget | None = None,
                tree: DTreeNode | None = None) -> Dict[int, Fraction]:
    """Exact Shapley values of all variables occurring in the function.

    The d-tree is compiled **once** and shared across variables (it is a
    function of the lineage alone); pass ``tree`` to reuse a complete
    d-tree compiled by another method — the compiled-lineage artifact
    tier — and skip compilation here entirely.  The variable-independent
    models pass over the tree likewise runs once, shared by every
    variable's cofactor pass.
    """
    if tree is None:
        tree = compile_dnf(function, heuristic=heuristic, budget=budget)
    models: ModelsMemo = {}
    return {
        variable: shapley_exact(function, variable, heuristic=heuristic,
                                budget=budget, tree=tree, models=models)
        for variable in sorted(function.variables)
    }


def shapley_brute_force(function: DNF, variable: int) -> Fraction:
    """Definitional Shapley value by exhaustive enumeration (testing only)."""
    counts = critical_set_counts(function, variable)
    n = function.num_variables()
    n_factorial = factorial(n)
    total = Fraction(0)
    for k, count in enumerate(counts):
        if count:
            total += Fraction(factorial(k) * factorial(n - k - 1),
                              n_factorial) * count
    return total


def banzhaf_from_critical_counts(counts: Sequence[int]) -> int:
    """Banzhaf value as the plain sum of critical-set counts (Eq. 16)."""
    return sum(counts)


def shapley_from_critical_counts(counts: Sequence[int],
                                 num_variables: Optional[int] = None
                                 ) -> Fraction:
    """Shapley value from critical-set counts (Eq. 17)."""
    n = num_variables if num_variables is not None else len(counts)
    n_factorial = factorial(n)
    total = Fraction(0)
    for k, count in enumerate(counts):
        if count:
            total += Fraction(factorial(k) * factorial(n - k - 1),
                              n_factorial) * count
    return total
