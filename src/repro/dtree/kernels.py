"""Vectorized (numpy) kernel tier over the arena columns.

The arena (:mod:`repro.dtree.arena`) flattened every fused pass into
tight index loops over parallel lists — one Python bytecode dispatch per
row.  This module removes the interpreter from the inner loop: rows are
grouped into a **level schedule** (by depth below the root, computed once
per arena and cached), and each fused pass becomes a handful of
whole-level numpy operations — gathers over the flat ``children`` array,
``ufunc.reduceat`` segment reductions, and one scatter per level:

::

    rows      0   1   2   3   4   5   6   (postorder)
    kinds     L   L   AND L   L   AND OR      L = literal
    depth     2   2   1   2   2   1   0
    schedule  [leaves: 0 1 3 4] -> [depth 1: AND{0,1} AND{3,4}] -> [OR]
                   one vector init      one reduceat per kind       root

Within a level the internal rows are stored **kind-contiguously**
(``AND | OR | XOR`` blocks of one flat table, sliced by precomputed
offsets), so per-kind fixups are slice arithmetic instead of boolean
masks and the whole level still reduces in one ``reduceat`` call.

Because every child row has exactly one parent (arenas flatten *trees*;
shared nodes get duplicate rows), the top-down multiplier scatter is
collision-free — ``multipliers[children] = contributions`` replaces the
per-child accumulation branch of the Python pass.

Three pass families are vectorized:

* **float tier** — twins of :func:`~repro.dtree.arena.arena_float_counts`
  / :func:`~repro.dtree.arena.arena_float_banzhaf` /
  :func:`~repro.dtree.arena.arena_float_surrogate`: log2-domain doubles
  with tracked relative-error columns.  The error accounting mirrors the
  Python pass per operation (never smaller), so results remain inside
  the documented enclosure contract.
* **exact int64 fast path** — count/Banzhaf over ``numpy.int64``.
  Eligibility is proven up front (every intermediate fits once the
  widest domain has at most :data:`INT64_SAFE_DOMAIN` variables, see
  ``_int_counts``), re-checked row-wise after the sweep, and anything
  outside the envelope **falls back row-exactly to the big-int Python
  pass** — values stay bit-identical arbitrary-precision ints end to
  end.
* **cross-request batching** — :func:`prewarm_arenas` stacks the arenas
  of a micro-batch into one fused column block (a forest keeps the
  postorder invariant per tree) and evaluates them in a single kernel
  sweep, scattering the results back into each arena's payload/result
  memo slots so the per-request evaluation path hits its caches.

numpy is an **optional** dependency (``pip install repro[fast]``): every
entry point takes ``kernel="auto" | "numpy" | "python"`` and degrades to
the pure-Python arena pass when numpy is absent, when an arena is
outside a kernel's envelope, or when it is too small/deep for
vectorization to pay (``"auto"`` only; ``"numpy"`` forces the kernel
wherever it is sound).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dtree.arena import (
    FLOAT_ERROR_UNIT,
    KIND_AND,
    KIND_DNF,
    KIND_FALSE,
    KIND_LITERAL,
    KIND_OR,
    KIND_TRUE,
    KIND_XOR,
    DTreeArena,
    IncompleteArenaError,
    _dnf_leaf_estimates,
    arena_banzhaf,
    arena_counts,
    arena_float_banzhaf,
    arena_float_counts,
    arena_float_surrogate,
    log2_add,
)

try:  # pragma: no cover - exercised via the no-numpy CI lane
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

_LN2 = math.log(2.0)

#: Valid values of the ``kernel`` selector.
KERNEL_NAMES = ("auto", "numpy", "python")

#: Widest domain (in variables) the exact int64 fast path accepts.  With
#: ``d <= 62`` every intermediate of the count and multiplier passes is
#: bounded by ``2**62 < 2**63`` (see the proofs in ``_int_counts`` /
#: ``_int_push``), so ``numpy.int64`` arithmetic cannot overflow.
INT64_SAFE_DOMAIN = 62

#: ``kernel="auto"`` thresholds: below this many rows, or below this
#: average level width, per-call numpy overhead beats the vector win and
#: auto mode keeps the Python pass.  ``kernel="numpy"`` ignores both.
AUTO_MIN_ROWS = 96
AUTO_MIN_WIDTH = 4.0

#: Result-slot key under which an arena memoizes its level schedule.
_PLAN_KEY = "__kernel_plan__"


class KernelUnavailableError(RuntimeError):
    """``kernel="numpy"`` was requested but numpy is not importable."""


class _KernelSoundnessError(Exception):
    """Post-sweep validation failed; caller must fall back to Python."""


def resolve_kernel(kernel: str) -> str:
    """Normalize a ``kernel`` selector to ``"numpy"`` or ``"python"``.

    ``"auto"`` resolves by availability (per-arena size gating happens
    later, at dispatch); ``"numpy"`` raises
    :class:`KernelUnavailableError` when numpy is missing so
    misconfiguration fails fast instead of mid-serving.
    """
    if kernel == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if kernel == "numpy":
        if not HAVE_NUMPY:
            raise KernelUnavailableError(
                "kernel='numpy' requested but numpy is not installed; "
                "install the optional extra (pip install repro[fast]) or "
                "use kernel='auto'")
        return "numpy"
    if kernel == "python":
        return "python"
    raise ValueError(
        f"kernel must be one of {KERNEL_NAMES}, not {kernel!r}")


# --------------------------------------------------------------------- #
# Null stats sink (duck-typed subset of EngineStats)
# --------------------------------------------------------------------- #


class _NullStats:
    """No-op stand-in so passes never branch on ``stats is None``."""

    def bump(self, **deltas: int) -> None:
        pass

    @contextmanager
    def timed_pass(self, label: str):
        yield


_NULL_STATS = _NullStats()


# --------------------------------------------------------------------- #
# Level schedule (KernelPlan)
# --------------------------------------------------------------------- #


class _Level:
    """All internal rows at one depth, ordered AND | OR | XOR.

    The kind blocks are contiguous (the schedule sorts rows by
    ``(depth, kind)``), so every per-kind branch of a sweep is a slice —
    no boolean masks — and each level costs one segment reduction plus
    one scatter regardless of how many kinds it mixes.  ``a_*`` marks
    the end of the AND block, ``o_*`` the end of the OR block, in row
    resp. flat-children coordinates.  The ``or_*`` domain gathers, the
    XOR-relative segment starts and the per-child error-unit column are
    static per plan, so they are precomputed here rather than
    re-gathered on every sweep.
    """

    __slots__ = ("rows", "flat", "starts", "counts",
                 "a_rows", "o_rows", "a_flat", "o_flat",
                 "or_rows_f", "or_flat_f", "or_rows_i", "or_flat_i",
                 "xor_starts", "unit_flat")


class KernelPlan:
    """Precomputed level schedule over one arena (or a stacked batch).

    Rows are grouped by *depth below the root*: every child sits one
    level deeper than its parent, so iterating levels deepest-first is a
    valid bottom-up order and shallowest-first a valid top-down order —
    for a single tree and equally for a stacked forest (each root is at
    depth 0).  Leaf rows are handled in one vectorized init regardless
    of depth; ``levels[d]`` holds the internal rows at depth ``d`` as
    one kind-contiguous :class:`_Level` (or ``None`` for a depth with
    leaves only).  The schedule is kept as flat (rows, depth, kind,
    counts, children) tables too, so stacking a micro-batch is a plain
    concatenate + one stable sort instead of per-level Python work.
    """

    __slots__ = ("arenas", "offsets", "roots", "n", "usable", "complete",
                 "int64_ok", "width", "ds_i", "ds_f", "levels",
                 "t_rows", "t_depth", "t_slot", "t_counts", "t_flat",
                 "true_rows", "lit_rows", "lit_vars", "lit_neg",
                 "lit_arena", "empty_and", "empty_or", "empty_xor",
                 "dnf_rows", "lit_order", "lit_sorted", "lit_sorted_neg",
                 "seg_starts", "seg_counts", "seg_arena", "seg_var",
                 "seg_neg", "n_pairs", "pair_vars", "pair_bounds",
                 "pair_lit_starts", "pos_seg", "neg_seg", "pos_pairs",
                 "neg_pairs")

    def __init__(self) -> None:
        self.arenas: List[DTreeArena] = []
        self.offsets: List[int] = []
        self.usable = False
        self.complete = False
        self.int64_ok = False
        self.width = 0.0
        self.n = 0
        self.levels: List[Optional[_Level]] = []

    # -- literal segment grouping (shared by every collect step) ------- #

    def _index_literals(self, arena_ids) -> None:
        """Sort literal rows into (arena, variable, negated) runs.

        Beyond the per-segment starts this also precomputes the
        *pair* index — consecutive (positive, negative) segments of the
        same (arena, variable) — so the combine step of every collect is
        a handful of scatters instead of a per-segment Python loop.
        """
        self.lit_arena = arena_ids
        n_arenas = len(self.arenas)
        if self.lit_rows.size == 0:
            zero = np.zeros(0, dtype=np.int64)
            self.lit_order = zero
            self.lit_sorted = zero
            self.lit_sorted_neg = np.zeros(0, dtype=bool)
            self.seg_starts = zero
            self.seg_counts = zero
            self.seg_arena = zero
            self.seg_var = zero
            self.seg_neg = np.zeros(0, dtype=bool)
            self.n_pairs = 0
            self.pair_vars: List[int] = []
            self.pair_bounds = np.zeros(n_arenas + 1, dtype=np.int64)
            self.pair_lit_starts = zero
            self.pos_seg = zero
            self.neg_seg = zero
            self.pos_pairs = zero
            self.neg_pairs = zero
            return
        neg_key = self.lit_neg.astype(np.int64)
        order = np.lexsort((neg_key, self.lit_vars, arena_ids))
        sorted_arena = arena_ids[order]
        sorted_var = self.lit_vars[order]
        sorted_neg = neg_key[order]
        boundary = np.empty(order.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = ((sorted_arena[1:] != sorted_arena[:-1])
                        | (sorted_var[1:] != sorted_var[:-1])
                        | (sorted_neg[1:] != sorted_neg[:-1]))
        starts = np.flatnonzero(boundary)
        self.lit_order = order
        self.lit_sorted = self.lit_rows[order]
        self.lit_sorted_neg = self.lit_neg[order]
        self.seg_starts = starts
        self.seg_counts = np.diff(np.append(starts, order.size))
        self.seg_arena = sorted_arena[starts]
        self.seg_var = sorted_var[starts]
        self.seg_neg = sorted_neg[starts].astype(bool)
        pair_b = np.empty(starts.size, dtype=bool)
        pair_b[0] = True
        pair_b[1:] = ((self.seg_arena[1:] != self.seg_arena[:-1])
                      | (self.seg_var[1:] != self.seg_var[:-1]))
        pair_idx = np.cumsum(pair_b) - 1
        pair_first = np.flatnonzero(pair_b)
        self.n_pairs = int(pair_first.size)
        self.pair_vars = self.seg_var[pair_first].tolist()
        self.pair_bounds = np.searchsorted(
            self.seg_arena[pair_first], np.arange(n_arenas + 1))
        self.pair_lit_starts = starts[pair_first]
        self.pos_seg = np.flatnonzero(~self.seg_neg)
        self.neg_seg = np.flatnonzero(self.seg_neg)
        self.pos_pairs = pair_idx[self.pos_seg]
        self.neg_pairs = pair_idx[self.neg_seg]


def _attach_levels(plan: KernelPlan) -> None:
    """Slice the flat schedule tables into per-depth :class:`_Level`s.

    The tables are sorted by ``(depth, kind)``, so each level and each
    kind block inside it is a contiguous slice; one global
    ``searchsorted`` finds every boundary.  The only per-level work is
    slicing views plus the tiny XOR-relative starts array.
    """
    t_rows, t_slot = plan.t_rows, plan.t_slot
    t_counts, t_flat = plan.t_counts, plan.t_flat
    if t_rows.size == 0:
        plan.levels = []
        plan.width = 0.0
        return
    nrows = int(t_rows.size)
    total_flat = int(t_flat.size)
    starts_all = np.zeros(nrows, dtype=np.int64)
    np.cumsum(t_counts[:-1], out=starts_all[1:])
    # Static whole-schedule gathers, sliced per level below.
    g_flat_f = plan.ds_f[t_flat]
    g_flat_i = plan.ds_i[t_flat]
    g_rows_f = plan.ds_f[t_rows]
    g_rows_i = plan.ds_i[t_rows]
    g_unit = np.repeat(
        np.where(t_slot == 2, 0.0, t_counts.astype(np.float64)),
        t_counts) * FLOAT_ERROR_UNIT
    key = plan.t_depth * 3 + t_slot
    max_depth = int(plan.t_depth[-1])
    bounds = np.searchsorted(key, np.arange(3 * (max_depth + 1) + 1))
    levels: List[Optional[_Level]] = []
    for d in range(max_depth + 1):
        lo = int(bounds[3 * d])
        a_end = int(bounds[3 * d + 1])
        o_end = int(bounds[3 * d + 2])
        hi = int(bounds[3 * d + 3])
        if lo == hi:
            levels.append(None)
            continue
        level = _Level()
        level.rows = t_rows[lo:hi]
        level.counts = t_counts[lo:hi]
        fl = int(starts_all[lo])
        fh = int(starts_all[hi]) if hi < nrows else total_flat
        level.flat = t_flat[fl:fh]
        level.starts = starts_all[lo:hi] - fl
        level.a_rows = a_end - lo
        level.o_rows = o_end - lo
        level.a_flat = (int(starts_all[a_end]) - fl
                        if a_end < nrows else fh - fl)
        level.o_flat = (int(starts_all[o_end]) - fl
                        if o_end < nrows else fh - fl)
        level.or_rows_f = g_rows_f[a_end:o_end]
        level.or_rows_i = g_rows_i[a_end:o_end]
        level.or_flat_f = g_flat_f[fl + level.a_flat:fl + level.o_flat]
        level.or_flat_i = g_flat_i[fl + level.a_flat:fl + level.o_flat]
        level.xor_starts = level.starts[level.o_rows:] - level.o_flat
        level.unit_flat = g_unit[fl:fh]
        levels.append(level)
    plan.levels = levels
    plan.width = nrows / len(levels)


def _build_plan(arena: DTreeArena) -> KernelPlan:
    """Build (never cache) the level schedule of one arena."""
    plan = KernelPlan()
    plan.arenas = [arena]
    plan.offsets = [0]
    n = len(arena)
    plan.n = n
    if not HAVE_NUMPY or n == 0:
        return plan
    try:
        kinds = np.asarray(arena.kinds, dtype=np.int64)
        ds = np.asarray(arena.domain_sizes, dtype=np.int64)
        variables = np.asarray(arena.variables, dtype=np.int64)
        child_first = np.asarray(arena.child_first, dtype=np.int64)
        child_last = np.asarray(arena.child_last, dtype=np.int64)
        children = np.asarray(arena.children, dtype=np.int64)
    except (OverflowError, ValueError):
        # A variable id or domain size outside int64: the Python pass
        # (arbitrary-precision throughout) handles it.
        return plan
    if children.size == 0:
        children = children.reshape(0)
    negated = np.asarray(arena.negated, dtype=bool)
    plan.ds_i = ds
    plan.ds_f = ds.astype(np.float64)
    plan.roots = np.asarray([n - 1], dtype=np.int64)

    # Depth below the root: children precede parents in postorder, so a
    # single backward loop suffices.  This is the only Python loop of
    # the build, and it runs once per arena (the plan is cached).
    depth = [0] * n
    cf = arena.child_first
    cl = arena.child_last
    ch = arena.children
    for row in range(n - 1, -1, -1):
        below = depth[row] + 1
        for child in ch[cf[row]:cl[row]]:
            depth[child] = below
    depth_np = np.asarray(depth, dtype=np.int64)

    has_children = child_last > child_first
    plan.true_rows = np.flatnonzero(kinds == KIND_TRUE)
    plan.dnf_rows = np.flatnonzero(kinds == KIND_DNF)
    plan.lit_rows = np.flatnonzero(kinds == KIND_LITERAL)
    plan.lit_vars = variables[plan.lit_rows]
    plan.lit_neg = negated[plan.lit_rows]
    plan.empty_and = np.flatnonzero((kinds == KIND_AND) & ~has_children)
    plan.empty_or = np.flatnonzero((kinds == KIND_OR) & ~has_children)
    plan.empty_xor = np.flatnonzero((kinds == KIND_XOR) & ~has_children)
    plan._index_literals(np.zeros(plan.lit_rows.size, dtype=np.int64))

    # Flat schedule tables: internal rows sorted by (depth, kind), their
    # children gathered in the same order (vectorized range
    # concatenation: repeat each span base, add the within-span offset).
    internal = np.flatnonzero(
        ((kinds == KIND_AND) | (kinds == KIND_OR) | (kinds == KIND_XOR))
        & has_children)
    slot = np.where(kinds[internal] == KIND_AND, 0,
                    np.where(kinds[internal] == KIND_OR, 1, 2))
    row_depths = depth_np[internal]
    order = np.argsort(row_depths * 3 + slot, kind="stable")
    plan.t_rows = internal[order]
    plan.t_depth = row_depths[order]
    plan.t_slot = slot[order]
    plan.t_counts = (child_last - child_first)[plan.t_rows]
    total = int(plan.t_counts.sum())
    starts = np.zeros(plan.t_rows.size, dtype=np.int64)
    np.cumsum(plan.t_counts[:-1], out=starts[1:])
    idx = (np.repeat(child_first[plan.t_rows], plan.t_counts)
           + (np.arange(total, dtype=np.int64)
              - np.repeat(starts, plan.t_counts)))
    plan.t_flat = children[idx]
    _attach_levels(plan)
    plan.complete = plan.dnf_rows.size == 0
    plan.int64_ok = bool(
        plan.complete and (ds.size == 0 or int(ds.max()) <= INT64_SAFE_DOMAIN))
    plan.usable = True
    return plan


def plan_of(arena: DTreeArena) -> KernelPlan:
    """The (cached) level schedule of one arena.

    Memoized in the arena's result slots — structural like the arena
    itself, so it survives payload churn and is dropped with the arena
    on mutation (``extend`` builds a fresh arena, hence a fresh plan).
    """
    plan = arena.results.get(_PLAN_KEY)
    if plan is None:
        plan = _build_plan(arena)
        arena.results[_PLAN_KEY] = plan
    return plan  # type: ignore[return-value]


def _stack_plans(arenas: Sequence[DTreeArena],
                 plans: Sequence[KernelPlan]) -> KernelPlan:
    """Stack per-arena schedules into one fused forest schedule.

    The cached flat tables concatenate with per-arena row offsets, one
    stable sort by ``(depth, kind)`` restores the schedule invariant
    (depth aligns: every root is depth 0), and one vectorized gather
    reorders the children block — O(total rows) numpy, no per-level
    Python work at batch time.
    """
    stacked = KernelPlan()
    stacked.arenas = list(arenas)
    sizes = [plan.n for plan in plans]
    offsets = [0] * len(plans)
    total = 0
    for i, size in enumerate(sizes):
        offsets[i] = total
        total += size
    stacked.offsets = offsets
    stacked.n = total
    stacked.roots = np.asarray(
        [off + size - 1 for off, size in zip(offsets, sizes)],
        dtype=np.int64)
    stacked.ds_i = np.concatenate([plan.ds_i for plan in plans])
    stacked.ds_f = np.concatenate([plan.ds_f for plan in plans])
    offs_np = np.asarray(offsets, dtype=np.int64)

    def _cat_off(arrays):
        out = np.concatenate(arrays)
        if out.size:
            out = out + np.repeat(offs_np, [a.size for a in arrays])
        return out

    stacked.true_rows = _cat_off([plan.true_rows for plan in plans])
    stacked.dnf_rows = _cat_off([plan.dnf_rows for plan in plans])
    stacked.empty_and = _cat_off([plan.empty_and for plan in plans])
    stacked.empty_or = _cat_off([plan.empty_or for plan in plans])
    stacked.empty_xor = _cat_off([plan.empty_xor for plan in plans])
    stacked.lit_rows = _cat_off([plan.lit_rows for plan in plans])
    stacked.lit_vars = np.concatenate([plan.lit_vars for plan in plans])
    stacked.lit_neg = np.concatenate([plan.lit_neg for plan in plans])
    stacked._index_literals(np.repeat(
        np.arange(len(plans), dtype=np.int64),
        [plan.lit_rows.size for plan in plans]))

    rows_c = _cat_off([plan.t_rows for plan in plans])
    flat_c = _cat_off([plan.t_flat for plan in plans])
    depth_c = np.concatenate([plan.t_depth for plan in plans])
    slot_c = np.concatenate([plan.t_slot for plan in plans])
    counts_c = np.concatenate([plan.t_counts for plan in plans])
    order = np.argsort(depth_c * 3 + slot_c, kind="stable")
    stacked.t_rows = rows_c[order]
    stacked.t_depth = depth_c[order]
    stacked.t_slot = slot_c[order]
    stacked.t_counts = counts_c[order]
    old_starts = np.zeros(counts_c.size, dtype=np.int64)
    np.cumsum(counts_c[:-1], out=old_starts[1:])
    new_starts = np.zeros(counts_c.size, dtype=np.int64)
    np.cumsum(stacked.t_counts[:-1], out=new_starts[1:])
    idx = (np.repeat(old_starts[order], stacked.t_counts)
           + (np.arange(flat_c.size, dtype=np.int64)
              - np.repeat(new_starts, stacked.t_counts)))
    stacked.t_flat = flat_c[idx]
    _attach_levels(stacked)
    stacked.complete = all(plan.complete for plan in plans)
    stacked.int64_ok = all(plan.int64_ok for plan in plans)
    stacked.usable = all(plan.usable for plan in plans)
    return stacked


# --------------------------------------------------------------------- #
# Vector helpers (log2-domain arithmetic with -inf / +inf handling)
# --------------------------------------------------------------------- #


def _v_log2_sub(a, b):
    """Elementwise ``log2(2**a - 2**b)`` for finite ``a``; -inf on ties.

    Callers hold one ``np.errstate`` guard around the whole sweep (the
    per-call context manager showed up in profiles).
    """
    t = np.exp2(b - a)  # b = -inf -> 0 -> result a
    cancel = t >= 1.0
    out = np.log1p(-np.where(cancel, 0.0, t)) / _LN2 + a
    out[cancel] = -np.inf
    return out


def _v_sub_error(a, b, err):
    """Elementwise twin of :func:`repro.dtree.arena._sub_error`."""
    t = np.exp2(b - a)
    poisoned = t >= 1.0 - 1e-9
    out = (err * (1.0 + np.where(poisoned, 0.0, t))
           / (1.0 - np.where(poisoned, 0.0, t))
           + FLOAT_ERROR_UNIT)
    out[poisoned] = np.inf
    return out


def _seg_excl_sums(values, starts, counts):
    """Per-segment exclusive prefix and suffix sums of *finite* values."""
    cum = np.cumsum(values)
    base = np.repeat(cum[starts] - values[starts], counts)
    prefix = cum - values - base
    totals = np.repeat(np.add.reduceat(values, starts), counts)
    suffix = totals - prefix - values
    return prefix, suffix


def _seg_excl_flags(mask, starts, counts):
    """Whether any flagged entry sits strictly before / after each slot."""
    marks = mask.astype(np.int64)
    cum = np.cumsum(marks)
    base = np.repeat(cum[starts] - marks[starts], counts)
    inclusive = cum - base
    before = (inclusive - marks) > 0
    totals = np.repeat(np.add.reduceat(marks, starts), counts)
    after = (totals - inclusive) > 0
    return before, after


def _seg_logsumexp(values, starts, counts):
    """Per-segment ``log2(sum 2**v)``; all--inf segments stay -inf."""
    tops = np.maximum.reduceat(values, starts)
    safe = np.where(np.isneginf(tops), 0.0, tops)
    sums = np.add.reduceat(
        np.exp2(values - np.repeat(safe, counts)), starts)
    out = safe + np.log2(sums)
    out[np.isneginf(tops)] = -np.inf
    return out


def _require_complete(plan: KernelPlan) -> None:
    if plan.dnf_rows.size:
        raise IncompleteArenaError(
            "exact counting requires a complete d-tree; found an "
            "undecomposed leaf")


# --------------------------------------------------------------------- #
# Float tier: vectorized counts, Banzhaf, surrogate
# --------------------------------------------------------------------- #


def _float_up_levels(plan: KernelPlan, logs, errs) -> None:
    """Bottom-up level loop shared by float counts and the surrogate.

    Each level is one kind-contiguous block: the per-child values are
    built by slice assignment (AND keeps the child log, OR flips it to
    the non-model mass, XOR zeroes it out of the sum), reduced with a
    single ``add.reduceat``, then the per-row results are fixed up by
    kind slice.  ``errs is None`` skips error tracking (surrogate).
    """
    unit = FLOAT_ERROR_UNIT
    for level in reversed(plan.levels):
        if level is None:
            continue
        flat, starts, counts = level.flat, level.starts, level.counts
        af, of = level.a_flat, level.o_flat
        ar, orr = level.a_rows, level.o_rows
        nr = level.rows.size
        child_logs = logs[flat]
        values = child_logs.copy()
        if of > af:
            values[af:of] = _v_log2_sub(level.or_flat_f, child_logs[af:of])
        if of < values.size:
            values[of:] = 0.0
        sums = np.add.reduceat(values, starts)
        if errs is not None:
            child_errs = errs[flat]
            evalues = child_errs.copy()
            if of > af:
                evalues[af:of] = _v_sub_error(
                    level.or_flat_f, child_logs[af:of], child_errs[af:of])
            if of < evalues.size:
                evalues[of:] = 0.0
            rerr = np.add.reduceat(evalues, starts)
            if ar:
                rerr[:ar] += counts[:ar] * unit
            if orr > ar:
                rerr[ar:orr] = _v_sub_error(
                    level.or_rows_f, sums[ar:orr], rerr[ar:orr])
            if orr < nr:
                rerr[orr:] = (
                    np.maximum.reduceat(child_errs[of:], level.xor_starts)
                    + counts[orr:] * unit)
            errs[level.rows] = rerr
        if orr > ar:
            sums[ar:orr] = _v_log2_sub(level.or_rows_f, sums[ar:orr])
        if orr < nr:
            sums[orr:] = _seg_logsumexp(
                child_logs[of:], level.xor_starts, counts[orr:])
        logs[level.rows] = sums


def _float_counts(plan: KernelPlan):
    """Level-scheduled twin of ``arena_float_counts`` (whole plan)."""
    _require_complete(plan)
    n = plan.n
    logs = np.full(n, -np.inf)
    errs = np.zeros(n)
    ds_f = plan.ds_f
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        logs[plan.true_rows] = ds_f[plan.true_rows]
        logs[plan.lit_rows] = 0.0
        logs[plan.empty_and] = 0.0
        if plan.empty_or.size:
            rows = plan.empty_or
            logs[rows] = _v_log2_sub(ds_f[rows], np.zeros(rows.size))
            errs[rows] = _v_sub_error(ds_f[rows], np.zeros(rows.size),
                                      np.zeros(rows.size))
        _float_up_levels(plan, logs, errs)
    return logs, errs


def _push_contributions(level: _Level, mult, merr, values, value_errs):
    """One level of the top-down pass (collision-free scatter).

    Mirrors the Python pass: child contribution is
    ``multiplier + (exclusive sibling prefix + suffix)`` in log2 space,
    its error ``mult_err + sum of sibling errors + one unit per op``
    (``level.unit_flat``; zero for XOR rows, whose children inherit the
    parent multiplier unchanged — their values/errors are zeroed by the
    caller, so they ride the same scatter).  -inf values (zero siblings)
    and +inf errors (poisoned siblings) propagate via segment flags
    rather than arithmetic, which keeps the cumulative-sum trick
    NaN-free; both are rare, so their machinery is gated on ``any()``.
    ``value_errs is None`` skips error tracking (surrogate).
    """
    starts, counts, flat = level.starts, level.counts, level.flat
    mrep = np.repeat(mult[level.rows], counts)
    zero = np.isneginf(values)
    has_zero = bool(zero.any())
    if has_zero:
        pre, suf = _seg_excl_sums(np.where(zero, 0.0, values),
                                  starts, counts)
    else:
        pre, suf = _seg_excl_sums(values, starts, counts)
    contribution = mrep + pre + suf
    if has_zero:
        zero_before, zero_after = _seg_excl_flags(zero, starts, counts)
        contribution[zero_before | zero_after] = -np.inf
    mult[flat] = contribution
    if value_errs is None:
        return
    merep = np.repeat(merr[level.rows], counts)
    poisoned = np.isinf(value_errs)
    if bool(poisoned.any()):
        epre, esuf = _seg_excl_sums(np.where(poisoned, 0.0, value_errs),
                                    starts, counts)
        err = merep + epre + esuf + level.unit_flat
        inf_before, inf_after = _seg_excl_flags(poisoned, starts, counts)
        err[inf_before | inf_after] = np.inf
    else:
        epre, esuf = _seg_excl_sums(value_errs, starts, counts)
        err = merep + epre + esuf + level.unit_flat
    merr[flat] = err


def _float_push(plan: KernelPlan, logs, errs):
    """Top-down multiplier pass (float): depth 0 -> deepest level."""
    mult = np.full(plan.n, -np.inf)
    merr = np.zeros(plan.n)
    mult[plan.roots] = 0.0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for level in plan.levels:
            if level is None:
                continue
            af, of = level.a_flat, level.o_flat
            child_logs = logs[level.flat]
            values = child_logs.copy()
            verrs = errs[level.flat]  # fancy gather: already a copy
            if of > af:
                values[af:of] = _v_log2_sub(
                    level.or_flat_f, child_logs[af:of])
                verrs[af:of] = _v_sub_error(
                    level.or_flat_f, child_logs[af:of], verrs[af:of])
            if of < values.size:
                values[of:] = 0.0
                verrs[of:] = 0.0
            _push_contributions(level, mult, merr, values, verrs)
    return mult, merr


def _literal_segments(plan: KernelPlan, mult, merr):
    """Log-sum-exp the literal multipliers per (arena, var, negated) run.

    Unreachable literals (multiplier -inf) contribute nothing to the
    mass and must not leak their (meaningless) error bounds into the
    segment maximum — exactly like the Python pass, which never visits
    them.
    """
    lm = mult[plan.lit_sorted]
    le = merr[plan.lit_sorted]
    seg_log = _seg_logsumexp(lm, plan.seg_starts, plan.seg_counts)
    le = np.where(np.isneginf(lm), 0.0, le)
    seg_err = (np.maximum.reduceat(le, plan.seg_starts)
               + plan.seg_counts * FLOAT_ERROR_UNIT)
    return seg_log, seg_err


def _collect_float_scores(plan: KernelPlan, mult, merr
                          ) -> List[Dict[int, Tuple[float, float]]]:
    """Per-arena ``{variable: (log2 |score|, rel_err)}`` dicts.

    The positive and negative masses of each (arena, variable) pair are
    scattered onto the precomputed pair index and combined in one
    vectorized shot — exactly the Python pass's case split: no negative
    mass keeps the positive one, positive >= negative subtracts with a
    tracked bound, negative > positive flips sign with a poisoned
    (infinite) bound.
    """
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        seg_log, seg_err = _literal_segments(plan, mult, merr)
        n_pairs = plan.n_pairs
        pos_log = np.full(n_pairs, -np.inf)
        pos_err = np.zeros(n_pairs)
        neg_log = np.full(n_pairs, -np.inf)
        neg_err = np.zeros(n_pairs)
        pos_log[plan.pos_pairs] = seg_log[plan.pos_seg]
        pos_err[plan.pos_pairs] = seg_err[plan.pos_seg]
        neg_log[plan.neg_pairs] = seg_log[plan.neg_seg]
        neg_err[plan.neg_pairs] = seg_err[plan.neg_seg]
        no_neg = np.isneginf(neg_log)
        flip = pos_log < neg_log
        hi = np.where(flip, neg_log, pos_log)
        lo = np.where(flip, pos_log, neg_log)
        res_log = np.where(no_neg, pos_log, _v_log2_sub(hi, lo))
        res_err = np.where(
            no_neg, pos_err,
            np.where(flip, np.inf,
                     _v_sub_error(pos_log, neg_log,
                                  np.maximum(pos_err, neg_err))))
    logs_l = res_log.tolist()
    errs_l = res_err.tolist()
    pair_vars = plan.pair_vars
    bounds = plan.pair_bounds
    scores: List[Dict[int, Tuple[float, float]]] = []
    for i, arena in enumerate(plan.arenas):
        result: Dict[int, Tuple[float, float]] = {
            variable: (-math.inf, 0.0)
            for variable in arena.domains[len(arena) - 1]}
        for j in range(int(bounds[i]), int(bounds[i + 1])):
            variable = pair_vars[j]
            if variable in result:
                result[variable] = (logs_l[j], errs_l[j])
        scores.append(result)
    return scores


def _scatter_columns(plan: KernelPlan, key_a: str, col_a, key_b: str,
                     col_b) -> None:
    """Slice stacked result columns back into each arena's payloads.

    One whole-column ``tolist`` (a single C call) then native list
    slicing per arena — far cheaper than a numpy slice + ``tolist`` per
    arena when the batch is large.
    """
    list_a = col_a.tolist()
    list_b = col_b.tolist()
    for arena, off in zip(plan.arenas, plan.offsets):
        size = len(arena)
        arena.payloads[key_a] = list_a[off:off + size]
        arena.payloads[key_b] = list_b[off:off + size]


def _numpy_float_sweep(plan: KernelPlan) -> None:
    """Fused float count + Banzhaf sweep; scatter into every arena."""
    logs, errs = _float_counts(plan)
    mult, merr = _float_push(plan, logs, errs)
    scores = _collect_float_scores(plan, mult, merr)
    _scatter_columns(plan, "float_counts", logs, "float_count_errs", errs)
    for arena, result in zip(plan.arenas, scores):
        arena.results["float_banzhaf"] = result


def _numpy_float_counts_only(plan: KernelPlan) -> None:
    logs, errs = _float_counts(plan)
    _scatter_columns(plan, "float_counts", logs, "float_count_errs", errs)


def _numpy_surrogate(arena: DTreeArena, plan: KernelPlan
                     ) -> Dict[int, float]:
    """Vectorized twin of ``arena_float_surrogate`` (single arena)."""
    n = plan.n
    logs = np.full(n, -np.inf)
    ds_f = plan.ds_f
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        logs[plan.true_rows] = ds_f[plan.true_rows]
        logs[plan.lit_rows] = 0.0
        logs[plan.empty_and] = 0.0
        if plan.empty_or.size:
            rows = plan.empty_or
            logs[rows] = _v_log2_sub(ds_f[rows], np.zeros(rows.size))
        leaf_scores: Dict[int, Dict[int, float]] = {}
        for row in plan.dnf_rows.tolist():
            count_est, dnf_estimates = _dnf_leaf_estimates(
                arena.leaf_functions[row], arena.domain_sizes[row])
            logs[row] = count_est
            leaf_scores[row] = dnf_estimates
        _float_up_levels(plan, logs, None)
        # Top-down: float push shape without error tracking.
        mult = np.full(n, -np.inf)
        mult[plan.roots] = 0.0
        for level in plan.levels:
            if level is None:
                continue
            af, of = level.a_flat, level.o_flat
            child_logs = logs[level.flat]
            values = child_logs.copy()
            if of > af:
                values[af:of] = _v_log2_sub(
                    level.or_flat_f, child_logs[af:of])
            if of < values.size:
                values[of:] = 0.0
            _push_contributions(level, mult, None, values, None)
        estimates: Dict[int, float] = {
            variable: -math.inf
            for variable in arena.domains[len(arena) - 1]}
        if plan.lit_rows.size:
            seg_log = _seg_logsumexp(
                mult[plan.lit_sorted], plan.seg_starts, plan.seg_counts)
            seg_vars = plan.seg_var[plan.pos_seg].tolist()
            seg_mass = seg_log[plan.pos_seg].tolist()
            # surrogate keeps the dominant positive mass
            for variable, mass in zip(seg_vars, seg_mass):
                estimates[variable] = log2_add(
                    estimates.get(variable, -math.inf), mass)
    if plan.dnf_rows.size:
        for row in plan.dnf_rows.tolist():
            multiplier = float(mult[row])
            if multiplier == -math.inf:
                continue
            rescale = multiplier - (arena.domain_sizes[row] - 1)
            for variable, estimate in leaf_scores[row].items():
                estimates[variable] = log2_add(
                    estimates.get(variable, -math.inf), rescale + estimate)
    return estimates


# --------------------------------------------------------------------- #
# Exact int64 fast path
# --------------------------------------------------------------------- #


def _int_counts(plan: KernelPlan):
    """Exact int64 count sweep (bit-identical to the big-int pass).

    Soundness: with every domain width ``d <= 62``, each subtree count
    and each OR non-model product is bounded by ``2**d <= 2**62``
    (children of a decomposition have disjoint domains, so partial
    products never exceed the parent's space) — all within int64.  A
    row-wise post-check (``0 <= count <= 2**d``) guards the envelope;
    violation raises and the dispatcher falls back to Python.
    """
    _require_complete(plan)
    n = plan.n
    ds = plan.ds_i
    one = np.int64(1)
    counts = np.zeros(n, dtype=np.int64)
    counts[plan.true_rows] = one << ds[plan.true_rows]
    counts[plan.lit_rows] = 1
    counts[plan.empty_and] = 1
    if plan.empty_or.size:
        counts[plan.empty_or] = (one << ds[plan.empty_or]) - 1
    with np.errstate(over="ignore"):
        for level in reversed(plan.levels):
            if level is None:
                continue
            af, of = level.a_flat, level.o_flat
            ar, orr = level.a_rows, level.o_rows
            child = counts[level.flat]
            values = child.copy()
            if of > af:
                values[af:of] = (one << level.or_flat_i) - child[af:of]
            if of < values.size:
                values[of:] = 1
            prod = np.multiply.reduceat(values, level.starts)
            if orr > ar:
                prod[ar:orr] = (one << level.or_rows_i) - prod[ar:orr]
            if orr < level.rows.size:
                prod[orr:] = np.add.reduceat(child[of:], level.xor_starts)
            counts[level.rows] = prod
    if bool(np.any(counts < 0)) or bool(np.any(counts > (one << ds))):
        raise _KernelSoundnessError("int64 count outside [0, 2^d]")
    return counts


def _int_push(plan: KernelPlan, counts):
    """Exact int64 top-down multiplier pass.

    Sibling products use the exclusive-product-by-division trick with
    explicit zero handling (a zero sibling cannot be divided out):
    exclusive product is 0 whenever another sibling is 0, else the
    product of the non-zero siblings.  Every multiplier is bounded by
    ``2**(d_root - d_row) <= 2**62`` (the sibling domains along the path
    are disjoint from the row's), so int64 cannot overflow.
    """
    mult = np.zeros(plan.n, dtype=np.int64)
    mult[plan.roots] = 1
    ds = plan.ds_i
    one = np.int64(1)
    with np.errstate(over="ignore"):
        for level in plan.levels:
            if level is None:
                continue
            af, of = level.a_flat, level.o_flat
            child = counts[level.flat]
            values = child.copy()
            if of > af:
                values[af:of] = (one << level.or_flat_i) - child[af:of]
            if of < values.size:
                values[of:] = 1  # XOR children inherit the multiplier
            mrep = np.repeat(mult[level.rows], level.counts)
            zero = values == 0
            if bool(zero.any()):
                nz = np.where(zero, one, values)
                total_nz = np.repeat(
                    np.multiply.reduceat(nz, level.starts), level.counts)
                zero_before, zero_after = _seg_excl_flags(
                    zero, level.starts, level.counts)
                exclusive = np.where(
                    zero_before | zero_after, 0,
                    np.where(zero, total_nz, total_nz // nz))
            else:
                total_nz = np.repeat(
                    np.multiply.reduceat(values, level.starts), level.counts)
                exclusive = total_nz // values
            mult[level.flat] = mrep * exclusive
    return mult


def _collect_int_banzhaf(plan: KernelPlan, mult) -> List[Dict[int, int]]:
    """Per-arena exact Banzhaf dicts from the literal multipliers."""
    results: List[Dict[int, int]] = [
        {variable: 0 for variable in arena.domains[len(arena) - 1]}
        for arena in plan.arenas]
    if plan.lit_rows.size:
        lm = mult[plan.lit_sorted]
        signed = np.where(plan.lit_sorted_neg, -lm, lm)
        # One reduceat per (arena, variable) pair: the positive block of
        # each pair precedes the negative one, so partial sums climb to
        # at most 2**(d-1) before descending — no int64 overflow.
        pair_sums = np.add.reduceat(signed, plan.pair_lit_starts).tolist()
        pair_vars = plan.pair_vars
        bounds = plan.pair_bounds
        for i, bucket in enumerate(results):
            for j in range(int(bounds[i]), int(bounds[i + 1])):
                variable = pair_vars[j]
                bucket[variable] = bucket.get(variable, 0) + pair_sums[j]
    return results


def _numpy_exact_sweep(plan: KernelPlan, need_banzhaf: bool = True) -> None:
    """Fused exact count (+ Banzhaf) sweep; scatter into every arena."""
    counts = _int_counts(plan)
    banzhaf: List[Dict[int, int]] = []
    if need_banzhaf:
        banzhaf = _collect_int_banzhaf(plan, _int_push(plan, counts))
    counts_list = counts.tolist()
    for i, (arena, off) in enumerate(zip(plan.arenas, plan.offsets)):
        size = len(arena)
        arena.payloads["counts"] = counts_list[off:off + size]
        if need_banzhaf:
            arena.results["banzhaf"] = banzhaf[i]


# --------------------------------------------------------------------- #
# Dispatchers (kernel selection, memo interop, fallback)
# --------------------------------------------------------------------- #


def _auto_worthwhile(plan: KernelPlan) -> bool:
    return plan.n >= AUTO_MIN_ROWS and plan.width >= AUTO_MIN_WIDTH


def _pick_numpy(arena: DTreeArena, kernel: str, *, exact: bool,
                stats) -> Optional[KernelPlan]:
    """The plan to vectorize with, or ``None`` for the Python pass."""
    if resolve_kernel(kernel) != "numpy":
        return None
    plan = plan_of(arena)
    if not plan.usable or not plan.complete:
        return None
    if exact and not plan.int64_ok:
        stats.bump(kernel_fallbacks=1)
        return None
    if kernel == "auto" and not _auto_worthwhile(plan):
        return None
    return plan


def counts_pass(arena: DTreeArena, kernel: str = "auto",
                stats=None) -> List[int]:
    """Exact count column via the selected kernel (bit-identical ints)."""
    stats = stats if stats is not None else _NULL_STATS
    cached = arena.payloads.get("counts")
    if cached is not None and cached[-1] is not None:
        stats.bump(payload_hits=1)
        return cached
    plan = _pick_numpy(arena, kernel, exact=True, stats=stats)
    if plan is not None:
        try:
            with stats.timed_pass("kernel_sweep"):
                _numpy_exact_sweep(plan, need_banzhaf=False)
        except _KernelSoundnessError:
            stats.bump(kernel_fallbacks=1)
        else:
            stats.bump(kernel_sweeps=1)
            return arena.payloads["counts"]
    with stats.timed_pass("count"):
        return arena_counts(arena)


def banzhaf_pass(arena: DTreeArena, kernel: str = "auto",
                 stats=None) -> Dict[int, int]:
    """Exact all-variables Banzhaf via the selected kernel."""
    stats = stats if stats is not None else _NULL_STATS
    cached = arena.results.get("banzhaf")
    if cached is not None:
        stats.bump(payload_hits=1)
        return cached  # type: ignore[return-value]
    plan = _pick_numpy(arena, kernel, exact=True, stats=stats)
    if plan is not None:
        try:
            with stats.timed_pass("kernel_sweep"):
                _numpy_exact_sweep(plan)
        except _KernelSoundnessError:
            stats.bump(kernel_fallbacks=1)
        else:
            stats.bump(kernel_sweeps=1)
            return arena.results["banzhaf"]  # type: ignore[return-value]
    with stats.timed_pass("banzhaf"):
        return arena_banzhaf(arena)


def float_counts_pass(arena: DTreeArena, kernel: str = "auto",
                      stats=None) -> Tuple[List[float], List[float]]:
    """Float count/err columns via the selected kernel."""
    stats = stats if stats is not None else _NULL_STATS
    logs = arena.payloads.get("float_counts")
    if logs is not None and logs[-1] is not None:
        stats.bump(payload_hits=1)
        return logs, arena.payloads["float_count_errs"]
    plan = _pick_numpy(arena, kernel, exact=False, stats=stats)
    if plan is not None:
        with stats.timed_pass("kernel_sweep"):
            _numpy_float_counts_only(plan)
        stats.bump(kernel_sweeps=1)
        return (arena.payloads["float_counts"],
                arena.payloads["float_count_errs"])
    with stats.timed_pass("float"):
        return arena_float_counts(arena)


def float_banzhaf_pass(arena: DTreeArena, kernel: str = "auto",
                       stats=None) -> Dict[int, Tuple[float, float]]:
    """Float fused Banzhaf scores via the selected kernel."""
    stats = stats if stats is not None else _NULL_STATS
    cached = arena.results.get("float_banzhaf")
    if cached is not None:
        stats.bump(payload_hits=1)
        return cached  # type: ignore[return-value]
    plan = _pick_numpy(arena, kernel, exact=False, stats=stats)
    if plan is not None:
        with stats.timed_pass("kernel_sweep"):
            _numpy_float_sweep(plan)
        stats.bump(kernel_sweeps=1)
        return arena.results["float_banzhaf"]  # type: ignore[return-value]
    with stats.timed_pass("float"):
        return arena_float_banzhaf(arena)


def float_surrogate_pass(arena: DTreeArena, kernel: str = "auto",
                         stats=None) -> Dict[int, float]:
    """Surrogate order estimates via the selected kernel (partial OK)."""
    stats = stats if stats is not None else _NULL_STATS
    cached = arena.results.get("float_surrogate")
    if cached is not None:
        stats.bump(payload_hits=1)
        return cached  # type: ignore[return-value]
    if resolve_kernel(kernel) == "numpy":
        plan = plan_of(arena)
        if plan.usable and (kernel == "numpy" or _auto_worthwhile(plan)):
            with stats.timed_pass("kernel_sweep"):
                estimates = _numpy_surrogate(arena, plan)
            stats.bump(kernel_sweeps=1)
            arena.results["float_surrogate"] = estimates
            return estimates
    with stats.timed_pass("surrogate"):
        return arena_float_surrogate(arena)


def prewarm_arenas(arenas: Iterable[DTreeArena], tier: str = "exact",
                   kernel: str = "auto", stats=None) -> int:
    """Cross-request batched sweep: one fused kernel pass over a forest.

    Stacks every not-yet-evaluated, kernel-eligible arena of a
    micro-batch into one column block, runs the fused count+Banzhaf
    sweep for the requested tier (``"exact"`` or ``"float"``) once, and
    scatters the results back into each arena's payload/result slots —
    the subsequent per-request evaluation path then hits its memoized
    results.  Returns the number of arenas swept (0 means every request
    evaluates individually; fewer than two eligible arenas never batch).
    """
    stats = stats if stats is not None else _NULL_STATS
    if tier not in ("exact", "float"):
        raise ValueError(f"tier must be 'exact' or 'float', not {tier!r}")
    if resolve_kernel(kernel) != "numpy":
        return 0
    candidates: List[Tuple[DTreeArena, KernelPlan]] = []
    for arena in arenas:
        if tier == "exact":
            if arena.results.get("banzhaf") is not None:
                continue
        elif arena.results.get("float_banzhaf") is not None:
            continue
        plan = plan_of(arena)
        if not plan.usable or not plan.complete:
            continue
        if tier == "exact" and not plan.int64_ok:
            continue
        candidates.append((arena, plan))
    if len(candidates) < 2:
        return 0
    stacked = _stack_plans([arena for arena, _ in candidates],
                           [plan for _, plan in candidates])
    if kernel == "auto" and not _auto_worthwhile(stacked):
        return 0
    try:
        with stats.timed_pass("kernel_sweep"):
            if tier == "exact":
                _numpy_exact_sweep(stacked)
            else:
                _numpy_float_sweep(stacked)
    except _KernelSoundnessError:
        stats.bump(kernel_fallbacks=1)
        return 0
    stats.bump(kernel_sweeps=1, kernel_batched_trees=len(candidates))
    return len(candidates)
