"""Incremental (anytime) d-tree compilation.

AdaBan (Fig. 3 of the paper) does not compile the lineage exhaustively.  It
keeps a *partial* d-tree whose leaves may still be undecomposed DNF
functions, and alternates between

* refining bounds on the Banzhaf value using the current partial tree, and
* expanding one leaf by a single decomposition step.

:class:`IncrementalCompiler` owns the partial tree and implements the
expansion steps.  Following the paper's optimization (1) (Section 3.2.4) the
``expand_step`` method is *lazy*: cheap structural steps (absorption,
factoring, independence partitioning) are applied eagerly until either a
Shannon expansion is performed or no non-trivial leaf remains, because only
Shannon expansions change the bounds enough to be worth re-evaluating.
"""

from __future__ import annotations

from typing import List, Optional

from repro.boolean.dnf import ConstantTrue, DNF
from repro.boolean.operations import factor_common_variables, independent_components
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


def node_for(function: DNF) -> DTreeNode:
    """Wrap a DNF into the appropriate leaf node without decomposing it.

    Single literals and constants become trivial leaves; a single literal
    over a larger domain becomes the literal conjoined with the constant 1
    over the silent variables (so model counts stay correct).
    """
    if function.is_false():
        return FalseLeaf(function.domain)
    absorbed = function.absorb()
    if absorbed.is_single_literal():
        variable = absorbed.single_literal()
        literal = LiteralLeaf(variable)
        silent = absorbed.domain - {variable}
        if silent:
            return DecompAnd([literal, TrueLeaf(silent)],
                             domain=absorbed.domain)
        return literal
    return DNFLeaf(absorbed)


class IncrementalCompiler:
    """Owns a partial d-tree and expands it one decomposition step at a time."""

    def __init__(self, function: DNF,
                 heuristic: Heuristic = select_most_frequent) -> None:
        self._heuristic = heuristic
        self.root: DTreeNode = node_for(function)
        self.shannon_steps = 0
        self.expansion_steps = 0
        # The set of undecomposed leaves is maintained incrementally so that
        # leaf selection and the completeness check stay O(#leaves) and O(1)
        # instead of traversing the whole (growing) tree on every step.
        self._open_leaves: set[DNFLeaf] = {
            leaf for leaf in self.root.iter_leaves() if isinstance(leaf, DNFLeaf)
        }

    @classmethod
    def resume(cls, root: DTreeNode,
               heuristic: Heuristic = select_most_frequent,
               shannon_steps: int = 0,
               expansion_steps: int = 0) -> "IncrementalCompiler":
        """Adopt an existing (possibly partial) tree and continue expanding it.

        The open-leaf frontier is re-derived from the tree itself, so a
        deserialized partial d-tree (:mod:`repro.dtree.serialize`) resumes
        exactly where the process that persisted it stopped.  ``root`` is
        adopted as-is and will be mutated; pass a private copy
        (:func:`~repro.dtree.serialize.clone_tree`) when the original must
        stay pristine.  The step counters seed the cumulative totals a
        persisted compilation already paid for.
        """
        compiler = cls.__new__(cls)
        compiler._heuristic = heuristic
        compiler.root = root
        compiler.shannon_steps = shannon_steps
        compiler.expansion_steps = expansion_steps
        compiler._open_leaves = {
            leaf for leaf in root.iter_leaves() if isinstance(leaf, DNFLeaf)
        }
        return compiler

    # ------------------------------------------------------------------ #
    # Leaf selection
    # ------------------------------------------------------------------ #

    def nontrivial_leaves(self) -> List[DNFLeaf]:
        """All leaves that are still undecomposed DNF functions."""
        return list(self._open_leaves)

    def is_complete(self) -> bool:
        """``True`` iff the tree is a complete d-tree."""
        return not self._open_leaves

    def pick_leaf(self) -> Optional[DNFLeaf]:
        """Choose the next leaf to expand (largest clause count first).

        Expanding the largest leaf shrinks the loosest bounds fastest, which
        is what makes the approximation intervals tighten quickly.
        """
        if not self._open_leaves:
            return None
        return max(self._open_leaves, key=lambda leaf: leaf.priority)

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #

    def expand_step(self, lazy: bool = True) -> bool:
        """Expand the tree by one step.

        With ``lazy=True`` (the default, matching the paper's optimization),
        cheap structural decompositions are applied repeatedly and the method
        returns after the first Shannon expansion (or when the tree becomes
        complete).  With ``lazy=False`` exactly one decomposition step is
        applied.  Returns ``True`` if the tree changed.
        """
        changed = False
        while True:
            leaf = self.pick_leaf()
            if leaf is None:
                return changed
            was_shannon = self._expand_leaf(leaf)
            changed = True
            self.expansion_steps += 1
            if was_shannon:
                self.shannon_steps += 1
            if not lazy or was_shannon:
                return changed

    def expand_to_completion(self, max_steps: Optional[int] = None) -> None:
        """Expand until the d-tree is complete (or ``max_steps`` is reached)."""
        steps = 0
        while not self.is_complete():
            self.expand_step(lazy=False)
            steps += 1
            if max_steps is not None and steps >= max_steps:
                return

    def _expand_leaf(self, leaf: DNFLeaf) -> bool:
        """Decompose one leaf in place.  Returns ``True`` on Shannon expansion."""
        function = leaf.function
        silent = function.silent_variables()

        if silent:
            replacement = DecompAnd([
                node_for(function.restricted_domain()),
                TrueLeaf(silent),
            ], domain=function.domain)
            self._replace(leaf, replacement)
            return False

        try:
            common, residual = factor_common_variables(function)
        except ConstantTrue as constant:
            literals: List[DTreeNode] = [
                LiteralLeaf(v) for v in sorted(function.common_variables())
            ]
            if constant.domain:
                literals.append(TrueLeaf(constant.domain))
            replacement = (DecompAnd(literals, domain=function.domain)
                           if len(literals) > 1 else literals[0])
            self._replace(leaf, replacement)
            return False
        if common:
            children = [LiteralLeaf(v) for v in sorted(common)]
            children.append(node_for(residual))
            self._replace(leaf, DecompAnd(children, domain=function.domain))
            return False

        components = independent_components(function)
        if len(components) > 1:
            self._replace(leaf, DecompOr([node_for(c) for c in components],
                                         domain=function.domain))
            return False

        # Shannon expansion.
        variable = self._heuristic(function)
        negative = function.cofactor(variable, False)
        try:
            positive_node = node_for(function.cofactor(variable, True))
        except ConstantTrue as constant:
            positive_node = TrueLeaf(constant.domain)
        domain = function.domain
        positive_branch = DecompAnd([LiteralLeaf(variable), positive_node],
                                    domain=domain)
        negative_branch = DecompAnd([
            LiteralLeaf(variable, negated=True),
            node_for(negative),
        ], domain=domain)
        self._replace(leaf, ExclusiveOr([positive_branch, negative_branch],
                                        domain=domain))
        return True

    def _replace(self, old: DTreeNode, new: DTreeNode) -> None:
        parent = old.parent
        if parent is None:
            self.root = new
            new.parent = None
        else:
            parent.replace_child(old, new)
            # Bounds cached on the ancestors are now stale.
            new.invalidate()
        old.parent = None
        if isinstance(old, DNFLeaf):
            self._open_leaves.discard(old)
        for leaf in new.iter_leaves():
            if isinstance(leaf, DNFLeaf):
                self._open_leaves.add(leaf)
