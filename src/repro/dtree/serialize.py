"""Exact, versioned (de)serialization of d-trees — complete *and* partial.

Compiled d-trees used to be an in-process-only artifact: linked object
graphs that died with the process.  This module gives them a stable,
JSON-serializable wire form so the engine can persist a compilation —
including a *partial* tree whose :class:`~repro.dtree.nodes.DNFLeaf`
frontier the anytime compilers can resume — and a warm-started process
can pick up exactly where a previous one stopped.

**Version 2 (current)** encodes the tree's arena
(:mod:`repro.dtree.arena`) directly — one dict of parallel columns in
postorder (children before parents, root last), integers only, so the
round-trip is exact by construction:

* ``"v"``: literal ``2`` (the dict shape is the version marker);
* ``"kinds"``: per-row node kind (``repro.dtree.arena.KIND_*``);
* ``"arity"``: per-row child count — spans are contiguous, so the flat
  ``"children"`` row-index list is recovered cumulatively;
* ``"lits"``: ``[variable, negated]`` per literal row, in row order;
* ``"doms"``: sorted domain per constant/DNF row, in row order;
* ``"dnfs"``: sorted clause lists per DNF row, in row order (the
  resumable frontier of a partial tree).

**Version 1 (legacy, decode only)** is the nested-list object-tree
structure:

* ``["T", [domain...]]`` / ``["F", [domain...]]`` — constants;
* ``["L", variable, negated]`` — a literal leaf;
* ``["D", [domain...], [[clause...]...]]`` — an undecomposed DNF leaf;
* ``["&", [children...]]`` / ``["|", [children...]]`` /
  ``["^", [children...]]`` — ``DecompAnd`` / ``DecompOr`` /
  ``ExclusiveOr``.

:func:`decode_tree` dispatches on the shape (dict → v2, list → v1), so
stores holding shards written by both versions decode transparently —
both forms build the same object trees, and :func:`clone_tree` /
:func:`trees_equal` operate on decoded objects, never on encodings, so
they are version-oblivious by construction.

Both directions are **iterative**, so arbitrarily deep Shannon chains
never depend on the interpreter recursion limit.  :func:`decode_tree`
validates as it builds — unknown tags, malformed payloads, or
structurally invalid nodes raise ``ValueError``, which the store tier
treats as corruption (recompute, never crash).

``TREE_FORMAT_VERSION`` is bumped on any incompatible change; persisted
artifacts recording an *unknown* version are discarded by their readers
(known-compatible older versions are listed in
:data:`repro.engine.artifact.ARTIFACT_COMPAT_VERSIONS`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.boolean.dnf import DNF
from repro.dtree.arena import (
    KIND_AND,
    KIND_DNF,
    KIND_FALSE,
    KIND_LITERAL,
    KIND_OR,
    KIND_TRUE,
    KIND_XOR,
    arena_of,
)
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)

#: Wire-format version of the tree encoding below (see module docstring).
TREE_FORMAT_VERSION = 2

_INNER_TAGS = {DecompAnd: "&", DecompOr: "|", ExclusiveOr: "^"}
_TAG_NODES = {"&": DecompAnd, "|": DecompOr, "^": ExclusiveOr}


def encode_tree(root: DTreeNode) -> dict:
    """JSON-serializable (v2, arena-columnar) form of a d-tree.

    Deterministic: the arena row order is a pure function of the tree
    structure and domains/clauses are emitted sorted, so equal trees
    encode to equal dicts (useful as a structural-equality check).
    Encoding goes through :func:`repro.dtree.arena.arena_of`, so a tree
    serialized right after evaluation reuses the already-built arena.
    """
    arena = arena_of(root)
    kinds = list(arena.kinds)
    arity: List[int] = []
    lits: List[list] = []
    doms: List[list] = []
    dnfs: List[list] = []
    for row, kind in enumerate(kinds):
        arity.append(arena.child_last[row] - arena.child_first[row])
        if kind == KIND_LITERAL:
            lits.append([arena.variables[row], bool(arena.negated[row])])
        elif kind == KIND_TRUE or kind == KIND_FALSE:
            doms.append(sorted(arena.domains[row]))
        elif kind == KIND_DNF:
            function = arena.leaf_functions[row]
            doms.append(sorted(function.domain))
            dnfs.append([list(clause)
                         for clause in function.sorted_clauses()])
    return {
        "v": 2,
        "kinds": kinds,
        "arity": arity,
        "lits": lits,
        "doms": doms,
        "dnfs": dnfs,
    }


def encode_tree_v1(root: DTreeNode) -> list:
    """Legacy (v1) nested-list encoding — kept so tests can produce the
    shards an older process would have written and prove
    :func:`decode_tree` still reads them losslessly.
    """
    encoded: Dict[int, list] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            encoded[id(node)] = [
                _INNER_TAGS[type(node)],
                [encoded.pop(id(child)) for child in node.children()],
            ]
            continue
        if isinstance(node, TrueLeaf):
            encoded[id(node)] = ["T", sorted(node.domain)]
        elif isinstance(node, FalseLeaf):
            encoded[id(node)] = ["F", sorted(node.domain)]
        elif isinstance(node, LiteralLeaf):
            encoded[id(node)] = ["L", node.variable, bool(node.negated)]
        elif isinstance(node, DNFLeaf):
            # sorted_clauses() reads straight off the bitset kernel's masks
            # (sorted tuples over the sorted domain), so a mask-only DNF
            # round-trips without materializing its frozenset view; the
            # emitted list-of-lists wire shape is unchanged.
            encoded[id(node)] = [
                "D",
                sorted(node.function.domain),
                [list(clause) for clause in node.function.sorted_clauses()],
            ]
        elif type(node) in _INNER_TAGS:
            stack.append((node, True))
            for child in node.children():
                stack.append((child, False))
        else:
            raise TypeError(
                f"cannot serialize d-tree node type {type(node).__name__}")
    return encoded[id(root)]


def _decode_leaf(tag: str, payload: list) -> DTreeNode:
    if tag == "T":
        (domain,) = payload
        return TrueLeaf(int(v) for v in domain)
    if tag == "F":
        (domain,) = payload
        return FalseLeaf(int(v) for v in domain)
    if tag == "L":
        variable, negated = payload
        if not isinstance(negated, bool):
            raise ValueError(f"malformed literal negation {negated!r}")
        return LiteralLeaf(int(variable), negated)
    if tag == "D":
        domain, clauses = payload
        function = DNF([tuple(int(v) for v in clause) for clause in clauses],
                       domain=[int(v) for v in domain])
        return DNFLeaf(function)
    raise ValueError(f"unknown d-tree node tag {tag!r}")


_KIND_INNER = {KIND_AND: DecompAnd, KIND_OR: DecompOr, KIND_XOR: ExclusiveOr}


def _decode_tree_v2(encoded: dict) -> DTreeNode:
    """Rebuild the object tree from v2 arena columns (forward loop)."""
    kinds = encoded["kinds"]
    arity = encoded["arity"]
    if not isinstance(kinds, (list, tuple)) or not kinds:
        raise ValueError("malformed arena encoding: empty kinds column")
    if len(arity) != len(kinds):
        raise ValueError("malformed arena encoding: column length mismatch")
    lits = iter(encoded["lits"])
    doms = iter(encoded["doms"])
    dnfs = iter(encoded["dnfs"])
    nodes: List[DTreeNode] = []
    for row, kind in enumerate(kinds):
        children_count = int(arity[row])
        if children_count:
            if children_count > len(nodes):
                raise ValueError(
                    "malformed arena encoding: child span out of range")
            children = nodes[len(nodes) - children_count:]
            del nodes[len(nodes) - children_count:]
        else:
            children = []
        if kind == KIND_TRUE:
            node = TrueLeaf(int(v) for v in next(doms))
        elif kind == KIND_FALSE:
            node = FalseLeaf(int(v) for v in next(doms))
        elif kind == KIND_LITERAL:
            variable, negated = next(lits)
            if not isinstance(negated, bool):
                raise ValueError(f"malformed literal negation {negated!r}")
            node = LiteralLeaf(int(variable), negated)
        elif kind == KIND_DNF:
            domain = [int(v) for v in next(doms)]
            clauses = [tuple(int(v) for v in clause)
                       for clause in next(dnfs)]
            node = DNFLeaf(DNF(clauses, domain=domain))
        elif kind in _KIND_INNER:
            if not children:
                raise ValueError("malformed arena encoding: childless "
                                 "inner node")
            node = _KIND_INNER[kind](children)
        else:
            raise ValueError(f"unknown arena node kind {kind!r}")
        if children and kind not in _KIND_INNER:
            raise ValueError("malformed arena encoding: leaf with children")
        nodes.append(node)
    if len(nodes) != 1:
        raise ValueError("malformed arena encoding: disconnected rows")
    return nodes[0]


def decode_tree(encoded: object) -> DTreeNode:
    """Inverse of :func:`encode_tree`; raises ``ValueError`` on bad input.

    Dispatches on the encoded shape: a dict is the v2 arena-columnar
    form, a list/tuple the legacy v1 nested-list form — so one store can
    hold shards written by both codec versions.  The decoded tree
    satisfies the structural d-tree invariants
    (:meth:`~repro.dtree.nodes.DTreeNode.validate` is run on the result),
    so downstream evaluators never crash on a tampered or truncated
    artifact — the error surfaces here, where callers expect it.
    """
    if isinstance(encoded, dict):
        if encoded.get("v") != 2:
            raise ValueError(
                f"unknown d-tree encoding version {encoded.get('v')!r}")
        try:
            root = _decode_tree_v2(encoded)
            root.validate()
            return root
        except ValueError:
            raise
        except Exception as error:
            raise ValueError(
                f"malformed d-tree encoding: {error}") from error
    try:
        built: Dict[int, DTreeNode] = {}
        stack = [(encoded, False)]
        while stack:
            obj, expanded = stack.pop()
            if not isinstance(obj, (list, tuple)) or not obj:
                raise ValueError(f"malformed d-tree node {obj!r}")
            tag = obj[0]
            if expanded:
                children = [built.pop(id(child)) for child in obj[1]]
                built[id(obj)] = _TAG_NODES[tag](children)
                continue
            if tag in _TAG_NODES:
                if len(obj) != 2 or not isinstance(obj[1], (list, tuple)) \
                        or not obj[1]:
                    raise ValueError(f"malformed inner node {obj!r}")
                stack.append((obj, True))
                for child in obj[1]:
                    stack.append((child, False))
            else:
                built[id(obj)] = _decode_leaf(tag, list(obj[1:]))
        root = built[id(encoded)]
        root.validate()
        return root
    except ValueError:
        raise
    except Exception as error:  # malformed payloads of any other shape
        raise ValueError(f"malformed d-tree encoding: {error}") from error


def clone_tree(root: DTreeNode) -> DTreeNode:
    """A structurally identical private copy of a (possibly partial) tree.

    Used before resuming a persisted or cached partial compilation: the
    incremental compiler mutates trees in place, and the cached artifact
    must stay pristine for other readers.  Iterative, like the codec.
    """
    cloned: Dict[int, DTreeNode] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        children = node.children()
        if expanded:
            cloned[id(node)] = node.clone_shallow(
                [cloned.pop(id(child)) for child in children])
            continue
        if children:
            stack.append((node, True))
            for child in children:
                stack.append((child, False))
        else:
            cloned[id(node)] = node.clone_shallow([])
    return cloned[id(root)]


def trees_equal(left: DTreeNode, right: DTreeNode) -> bool:
    """Structural equality of two d-trees (same shapes, domains, leaves).

    Paired iterative walk: comparing the encoded nested lists instead
    would recurse inside the C-level list comparison and hit the
    interpreter recursion limit on deep Shannon chains.
    """
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        if type(a) is not type(b):
            return False
        if isinstance(a, (TrueLeaf, FalseLeaf)):
            if a.domain != b.domain:
                return False
        elif isinstance(a, LiteralLeaf):
            if a.variable != b.variable or a.negated != b.negated:
                return False
        elif isinstance(a, DNFLeaf):
            if a.function != b.function:
                return False
        else:
            left_children = a.children()
            right_children = b.children()
            if len(left_children) != len(right_children):
                return False
            stack.extend(zip(left_children, right_children))
    return True


__all__ = [
    "TREE_FORMAT_VERSION",
    "clone_tree",
    "decode_tree",
    "encode_tree",
    "encode_tree_v1",
    "trees_equal",
]
