"""Exact, versioned (de)serialization of d-trees — complete *and* partial.

Compiled d-trees used to be an in-process-only artifact: linked object
graphs that died with the process.  This module gives them a stable,
JSON-serializable wire form so the engine can persist a compilation —
including a *partial* tree whose :class:`~repro.dtree.nodes.DNFLeaf`
frontier the anytime compilers can resume — and a warm-started process
can pick up exactly where a previous one stopped.

The encoding is a nested-list structure (no floats anywhere, so the
round-trip is exact by construction):

* ``["T", [domain...]]`` / ``["F", [domain...]]`` — constants;
* ``["L", variable, negated]`` — a literal leaf;
* ``["D", [domain...], [[clause...]...]]`` — an undecomposed DNF leaf
  (the resumable frontier of a partial tree);
* ``["&", [children...]]`` / ``["|", [children...]]`` /
  ``["^", [children...]]`` — ``DecompAnd`` / ``DecompOr`` /
  ``ExclusiveOr``.

Both directions are **iterative** (explicit stacks), so arbitrarily deep
Shannon chains never depend on the interpreter recursion limit.
:func:`decode_tree` validates as it builds — unknown tags, malformed
payloads, or structurally invalid nodes raise ``ValueError``, which the
store tier treats as corruption (recompute, never crash).

``TREE_FORMAT_VERSION`` is bumped on any incompatible change; persisted
artifacts recording a different version are discarded by their readers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.boolean.dnf import DNF
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)

#: Wire-format version of the tree encoding below (see module docstring).
TREE_FORMAT_VERSION = 1

_INNER_TAGS = {DecompAnd: "&", DecompOr: "|", ExclusiveOr: "^"}
_TAG_NODES = {"&": DecompAnd, "|": DecompOr, "^": ExclusiveOr}


def encode_tree(root: DTreeNode) -> list:
    """JSON-serializable form of a (complete or partial) d-tree.

    Deterministic: domains and clauses are emitted sorted, so equal trees
    encode to equal structures (useful as a structural-equality check).
    """
    encoded: Dict[int, list] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            encoded[id(node)] = [
                _INNER_TAGS[type(node)],
                [encoded.pop(id(child)) for child in node.children()],
            ]
            continue
        if isinstance(node, TrueLeaf):
            encoded[id(node)] = ["T", sorted(node.domain)]
        elif isinstance(node, FalseLeaf):
            encoded[id(node)] = ["F", sorted(node.domain)]
        elif isinstance(node, LiteralLeaf):
            encoded[id(node)] = ["L", node.variable, bool(node.negated)]
        elif isinstance(node, DNFLeaf):
            # sorted_clauses() reads straight off the bitset kernel's masks
            # (sorted tuples over the sorted domain), so a mask-only DNF
            # round-trips without materializing its frozenset view; the
            # emitted list-of-lists wire shape is unchanged.
            encoded[id(node)] = [
                "D",
                sorted(node.function.domain),
                [list(clause) for clause in node.function.sorted_clauses()],
            ]
        elif type(node) in _INNER_TAGS:
            stack.append((node, True))
            for child in node.children():
                stack.append((child, False))
        else:
            raise TypeError(
                f"cannot serialize d-tree node type {type(node).__name__}")
    return encoded[id(root)]


def _decode_leaf(tag: str, payload: list) -> DTreeNode:
    if tag == "T":
        (domain,) = payload
        return TrueLeaf(int(v) for v in domain)
    if tag == "F":
        (domain,) = payload
        return FalseLeaf(int(v) for v in domain)
    if tag == "L":
        variable, negated = payload
        if not isinstance(negated, bool):
            raise ValueError(f"malformed literal negation {negated!r}")
        return LiteralLeaf(int(variable), negated)
    if tag == "D":
        domain, clauses = payload
        function = DNF([tuple(int(v) for v in clause) for clause in clauses],
                       domain=[int(v) for v in domain])
        return DNFLeaf(function)
    raise ValueError(f"unknown d-tree node tag {tag!r}")


def decode_tree(encoded: object) -> DTreeNode:
    """Inverse of :func:`encode_tree`; raises ``ValueError`` on bad input.

    The decoded tree satisfies the structural d-tree invariants
    (:meth:`~repro.dtree.nodes.DTreeNode.validate` is run on the result),
    so downstream evaluators never crash on a tampered or truncated
    artifact — the error surfaces here, where callers expect it.
    """
    try:
        built: Dict[int, DTreeNode] = {}
        stack = [(encoded, False)]
        while stack:
            obj, expanded = stack.pop()
            if not isinstance(obj, (list, tuple)) or not obj:
                raise ValueError(f"malformed d-tree node {obj!r}")
            tag = obj[0]
            if expanded:
                children = [built.pop(id(child)) for child in obj[1]]
                built[id(obj)] = _TAG_NODES[tag](children)
                continue
            if tag in _TAG_NODES:
                if len(obj) != 2 or not isinstance(obj[1], (list, tuple)) \
                        or not obj[1]:
                    raise ValueError(f"malformed inner node {obj!r}")
                stack.append((obj, True))
                for child in obj[1]:
                    stack.append((child, False))
            else:
                built[id(obj)] = _decode_leaf(tag, list(obj[1:]))
        root = built[id(encoded)]
        root.validate()
        return root
    except ValueError:
        raise
    except Exception as error:  # malformed payloads of any other shape
        raise ValueError(f"malformed d-tree encoding: {error}") from error


def clone_tree(root: DTreeNode) -> DTreeNode:
    """A structurally identical private copy of a (possibly partial) tree.

    Used before resuming a persisted or cached partial compilation: the
    incremental compiler mutates trees in place, and the cached artifact
    must stay pristine for other readers.  Iterative, like the codec.
    """
    cloned: Dict[int, DTreeNode] = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        children = node.children()
        if expanded:
            cloned[id(node)] = node.clone_shallow(
                [cloned.pop(id(child)) for child in children])
            continue
        if children:
            stack.append((node, True))
            for child in children:
                stack.append((child, False))
        else:
            cloned[id(node)] = node.clone_shallow([])
    return cloned[id(root)]


def trees_equal(left: DTreeNode, right: DTreeNode) -> bool:
    """Structural equality of two d-trees (same shapes, domains, leaves).

    Paired iterative walk: comparing the encoded nested lists instead
    would recurse inside the C-level list comparison and hit the
    interpreter recursion limit on deep Shannon chains.
    """
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        if type(a) is not type(b):
            return False
        if isinstance(a, (TrueLeaf, FalseLeaf)):
            if a.domain != b.domain:
                return False
        elif isinstance(a, LiteralLeaf):
            if a.variable != b.variable or a.negated != b.negated:
                return False
        elif isinstance(a, DNFLeaf):
            if a.function != b.function:
                return False
        else:
            left_children = a.children()
            right_children = b.children()
            if len(left_children) != len(right_children):
                return False
            stack.extend(zip(left_children, right_children))
    return True


__all__ = [
    "TREE_FORMAT_VERSION",
    "clone_tree",
    "decode_tree",
    "encode_tree",
    "trees_equal",
]
