"""Arena (struct-of-arrays) backend for compiled d-trees.

The object d-tree (:mod:`repro.dtree.nodes`) is the *construction*
representation: the compilers need parent pointers, in-place leaf
replacement and per-node cache invalidation.  Every evaluation pass,
however, only ever walks the finished structure — and walking a linked
graph of Python objects pays an attribute load, an ``isinstance`` fan-out
and a method call per node per pass.  This module flattens a compiled
(or partially compiled) tree into a **postorder-contiguous
struct-of-arrays arena** so the fused passes become tight loops over
parallel lists indexed by ``int``:

* ``kinds[i]`` — small-int node kind (``KIND_*`` below), replacing
  ``isinstance`` dispatch;
* ``variables[i]`` / ``negated[i]`` — literal payload (``-1`` / ``False``
  on non-literal rows);
* ``domain_sizes[i]`` — ``len(node.domain)`` (every counting rule needs
  only the size; the full domain stays reachable via ``domains[i]``);
* ``child_first[i]`` / ``child_last[i]`` — the row's span in the flat
  ``children`` array (``[first, last)``), empty for leaves;
* ``leaf_functions[i]`` — the undecomposed :class:`~repro.boolean.dnf.DNF`
  of a ``KIND_DNF`` row (partial trees only);
* named **payload columns** (:meth:`DTreeArena.payload`) — per-node
  scratch shared by the passes: the exact subtree-count column, the
  size-indexed model vectors, the float log-count column, …  The
  engine's old node-id-keyed count memo is now a mirror view of the
  ``"counts"`` payload column.

**Postorder invariant**: every child row precedes its parent row
(``children[j] < i`` for all ``j`` in the span of row ``i``), and the
root is the last row.  Bottom-up passes are therefore a forward ``for``
loop and top-down passes a backward one — no explicit stack, no
recursion, no visit ordering logic.  Sibling subtrees are contiguous
(the rows of one child's subtree form one block), matching the order in
which :func:`repro.dtree.compile.compile_dnf` finishes subtrees, so the
compiler can emit arena rows directly through an :class:`ArenaBuilder`.

Arenas are **derived data**: built lazily from a root node and cached in
the root's ``_cache`` (:func:`arena_of`), which
:meth:`~repro.dtree.nodes.DTreeNode.invalidate` clears on any in-place
mutation — a stale arena is unreachable by construction, exactly like
the bounds caches.  :meth:`DTreeArena.extend` rebuilds the arrays after
an incremental-compiler mutation while carrying payload values over for
every row whose subtree is provably unchanged.

The exact passes here are drop-in equivalents of the object-tree passes
in :mod:`repro.core.exaban` / :mod:`repro.core.shapley` /
:mod:`repro.core.bounds` (which remain the differential baseline, with
:mod:`repro.core.reference` as the seed oracle).  The float passes are
the ranking fast path: log2-domain scores with a tracked relative-error
bound, so callers can tell which variables are separated beyond floating
error and which need the exact-``Fraction`` fallback.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.boolean.dnf import DNF
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)

#: Node kinds (row tags of the ``kinds`` column).
KIND_TRUE = 0
KIND_FALSE = 1
KIND_LITERAL = 2
KIND_DNF = 3
KIND_AND = 4
KIND_OR = 5
KIND_XOR = 6

_NODE_KINDS = {
    TrueLeaf: KIND_TRUE,
    FalseLeaf: KIND_FALSE,
    LiteralLeaf: KIND_LITERAL,
    DNFLeaf: KIND_DNF,
    DecompAnd: KIND_AND,
    DecompOr: KIND_OR,
    ExclusiveOr: KIND_XOR,
}

#: Root-cache key under which :func:`arena_of` memoizes the arena.
_ARENA_CACHE_KEY = "dtree_arena"

#: Per-operation relative-error unit of the float passes: a few double
#: ULPs, deliberately conservative (``math.log1p``/``math.log2`` are not
#: correctly rounded on every platform).
FLOAT_ERROR_UNIT = 2.0 ** -50

_LN2 = math.log(2.0)


class ArenaBuilder:
    """Accumulates arena rows bottom-up (children before parents).

    Used by :meth:`DTreeArena.from_tree` over a postorder walk, and by
    :func:`repro.dtree.compile.compile_dnf` to emit rows *as subtrees
    complete* — the compiler finishes children before their parent and
    sibling subtrees back-to-back, which is exactly the postorder
    contiguity the arena requires.
    """

    def __init__(self) -> None:
        self.kinds: List[int] = []
        self.variables: List[int] = []
        self.negated: List[bool] = []
        self.domain_sizes: List[int] = []
        self.child_first: List[int] = []
        self.child_last: List[int] = []
        self.children: List[int] = []
        self.domains: List[frozenset] = []
        self.leaf_functions: List[Optional[DNF]] = []
        self.nodes: List[DTreeNode] = []
        self.index: Dict[int, int] = {}

    def add(self, node: DTreeNode) -> int:
        """Append one row; every child of ``node`` must already have a row."""
        kind = _NODE_KINDS.get(type(node))
        if kind is None:
            raise TypeError(
                f"unknown d-tree node type {type(node).__name__}")
        row = len(self.kinds)
        first = len(self.children)
        for child in node.children():
            self.children.append(self.index[id(child)])
        self.kinds.append(kind)
        if kind == KIND_LITERAL:
            self.variables.append(node.variable)
            self.negated.append(node.negated)
        else:
            self.variables.append(-1)
            self.negated.append(False)
        self.domain_sizes.append(len(node.domain))
        self.child_first.append(first)
        self.child_last.append(len(self.children))
        self.domains.append(node.domain)
        self.leaf_functions.append(
            node.function if kind == KIND_DNF else None)
        self.nodes.append(node)
        self.index[id(node)] = row
        return row

    def finish(self, root: DTreeNode) -> "DTreeArena":
        """Seal the rows into an arena whose last row is ``root``."""
        if not self.nodes or self.nodes[-1] is not root:
            raise ValueError("arena root must be the last row added")
        return DTreeArena(self)


class DTreeArena:
    """One flattened d-tree: parallel columns plus named payload slots.

    Construct through :meth:`from_tree`, :func:`arena_of` (cached), or an
    :class:`ArenaBuilder` fed by the compiler.  The row order satisfies
    the postorder invariant documented in the module docstring; the root
    is row ``len(self) - 1``.
    """

    __slots__ = ("kinds", "variables", "negated", "domain_sizes",
                 "child_first", "child_last", "children", "domains",
                 "leaf_functions", "nodes", "index", "payloads", "results")

    def __init__(self, builder: ArenaBuilder) -> None:
        self.kinds = builder.kinds
        self.variables = builder.variables
        self.negated = builder.negated
        self.domain_sizes = builder.domain_sizes
        self.child_first = builder.child_first
        self.child_last = builder.child_last
        self.children = builder.children
        self.domains = builder.domains
        self.leaf_functions = builder.leaf_functions
        self.nodes = builder.nodes
        self.index = builder.index
        #: Named per-row payload columns (counts, models, float logs, ...).
        self.payloads: Dict[str, list] = {}
        #: Whole-arena derived results (the Banzhaf dict, float scores);
        #: unlike payload columns these are *not* carried by :meth:`extend`.
        self.results: Dict[str, object] = {}

    # -- construction --------------------------------------------------- #

    @classmethod
    def from_tree(cls, root: DTreeNode) -> "DTreeArena":
        """Flatten a (complete or partial) tree; iterative postorder."""
        builder = ArenaBuilder()
        preorder: List[DTreeNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            preorder.append(node)
            stack.extend(node.children())
        for node in reversed(preorder):
            builder.add(node)
        return builder.finish(root)

    def extend(self, root: DTreeNode) -> "DTreeArena":
        """Re-flatten after in-place mutation, carrying payloads over.

        The incremental compiler replaces ``DNFLeaf`` rows by fresh
        subtrees *in place*, so node identity alone does not prove a
        subtree unchanged (an ancestor keeps its id while its contents
        change).  A row's payload carries over iff the node had a row in
        this arena, its direct child ids are unchanged, **and** every
        child row carried over — validity propagates bottom-up, so the
        mutated path to the root is rebuilt while untouched subtrees
        keep their computed payload values.
        """
        fresh = DTreeArena.from_tree(root)
        if not self.payloads:
            return fresh
        # Bottom-up validity map: fresh row -> carried old row (or -1).
        # (The old arena keeps references to its nodes alive, so id-based
        # lookup cannot be confused by interpreter id reuse.)
        carried = [-1] * len(fresh.kinds)
        for row, node in enumerate(fresh.nodes):
            old_row = self.index.get(id(node))
            if old_row is None:
                continue
            old_children = self.children[
                self.child_first[old_row]:self.child_last[old_row]]
            new_children = fresh.children[
                fresh.child_first[row]:fresh.child_last[row]]
            if len(old_children) != len(new_children):
                continue
            if all(carried[new] == old
                   for new, old in zip(new_children, old_children)):
                carried[row] = old_row
        for name, column in self.payloads.items():
            fresh_column = [None] * len(fresh.kinds)
            for row, old_row in enumerate(carried):
                if old_row >= 0:
                    fresh_column[row] = column[old_row]
            fresh.payloads[name] = fresh_column
        return fresh

    # -- basic accessors ------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def root(self) -> int:
        """Row index of the root (last row, by the postorder invariant)."""
        return len(self.kinds) - 1

    def is_complete(self) -> bool:
        """``True`` iff no row is an undecomposed DNF leaf."""
        return KIND_DNF not in self.kinds

    def payload(self, name: str) -> list:
        """Get or create the named payload column (``None``-filled)."""
        column = self.payloads.get(name)
        if column is None:
            column = [None] * len(self.kinds)
            self.payloads[name] = column
        return column

    def child_rows(self, row: int) -> List[int]:
        """The child row indices of one row (empty for leaves)."""
        return self.children[self.child_first[row]:self.child_last[row]]

    def to_tree(self) -> DTreeNode:
        """Materialize a fresh object tree (used by the v2 codec decode)."""
        built: List[DTreeNode] = []
        for row, kind in enumerate(self.kinds):
            if kind == KIND_TRUE:
                node: DTreeNode = TrueLeaf(self.domains[row])
            elif kind == KIND_FALSE:
                node = FalseLeaf(self.domains[row])
            elif kind == KIND_LITERAL:
                node = LiteralLeaf(self.variables[row], self.negated[row])
            elif kind == KIND_DNF:
                node = DNFLeaf(self.leaf_functions[row])
            else:
                children = [built[child] for child in self.child_rows(row)]
                if kind == KIND_AND:
                    node = DecompAnd(children)
                elif kind == KIND_OR:
                    node = DecompOr(children)
                else:
                    node = ExclusiveOr(children)
            built.append(node)
        return built[-1]


def arena_of(root: DTreeNode) -> DTreeArena:
    """The (cached) arena of a tree; built lazily, one per root.

    The arena is memoized in the root's per-node cache, which
    :meth:`~repro.dtree.nodes.DTreeNode.invalidate` clears from any
    mutated descendant up to the root — so a cached arena is always
    consistent with the live tree.  Concurrent builders at worst
    duplicate the (idempotent) construction, matching the bounds-cache
    discipline.
    """
    arena = root.cache_get(_ARENA_CACHE_KEY)
    if arena is None:
        arena = DTreeArena.from_tree(root)
        root.cache_set(_ARENA_CACHE_KEY, arena)
    return arena


def install_arena(root: DTreeNode, builder: ArenaBuilder) -> DTreeArena:
    """Seal a compiler-fed builder and prime the root's arena cache.

    Lets :func:`repro.dtree.compile.compile_dnf` hand over the rows it
    emitted during compilation, so the first :func:`arena_of` lookup is
    a cache hit instead of a flattening walk.
    """
    arena = builder.finish(root)
    root.cache_set(_ARENA_CACHE_KEY, arena)
    return arena


class IncompleteArenaError(Exception):
    """Raised when an exact pass is attempted on a partial-tree arena."""


# --------------------------------------------------------------------- #
# Exact passes (tight index loops; bit-identical to the object passes)
# --------------------------------------------------------------------- #


def arena_counts(arena: DTreeArena) -> List[int]:
    """The exact subtree model-count payload column (bottom-up, cached).

    The column may arrive partially filled from :meth:`DTreeArena.extend`
    (carried rows keep their value, rebuilt rows hold ``None``); only the
    missing rows are recomputed.
    """
    counts = arena.payloads.get("counts")
    if counts is not None and counts[-1] is not None:
        # Bottom-up validity propagation means a filled root row implies
        # a fully filled column.
        return counts
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    child_first = arena.child_first
    child_last = arena.child_last
    children = arena.children
    if counts is None:
        counts = [None] * len(kinds)  # type: ignore[list-item]
    # Tight postorder loop: slice-iterate the child spans (substantially
    # faster in CPython than range-and-index) — this is the hot path the
    # arena exists for.
    for row, kind in enumerate(kinds):
        if counts[row] is not None:
            continue
        if kind == KIND_LITERAL:
            counts[row] = 1
        elif kind == KIND_AND:
            value = 1
            for child in children[child_first[row]:child_last[row]]:
                value *= counts[child]
            counts[row] = value
        elif kind == KIND_OR:
            non_models = 1
            for child in children[child_first[row]:child_last[row]]:
                non_models *= (1 << domain_sizes[child]) - counts[child]
            counts[row] = (1 << domain_sizes[row]) - non_models
        elif kind == KIND_XOR:
            value = 0
            for child in children[child_first[row]:child_last[row]]:
                value += counts[child]
            counts[row] = value
        elif kind == KIND_TRUE:
            counts[row] = 1 << domain_sizes[row]
        elif kind == KIND_FALSE:
            counts[row] = 0
        else:
            raise IncompleteArenaError(
                "exact counting requires a complete d-tree; found an "
                "undecomposed leaf")
    arena.payloads["counts"] = counts
    return counts


def arena_banzhaf(arena: DTreeArena) -> Dict[int, int]:
    """Exact Banzhaf values of all root-domain variables (both passes).

    Bottom-up counts (:func:`arena_counts`, shared payload) plus one
    top-down multiplier loop with prefix/suffix sibling products —
    identical arithmetic to :func:`repro.core.exaban.exaban_all`, minus
    the object walk.  Cached as the per-arena ``banzhaf`` result.
    """
    cached = arena.results.get("banzhaf")
    if cached is not None:
        return cached  # type: ignore[return-value]
    counts = arena_counts(arena)
    kinds = arena.kinds
    variables = arena.variables
    negated = arena.negated
    domain_sizes = arena.domain_sizes
    child_first = arena.child_first
    child_last = arena.child_last
    children = arena.children
    size = len(kinds)
    multipliers = [0] * size
    multipliers[size - 1] = 1
    banzhaf: Dict[int, int] = {v: 0 for v in arena.domains[size - 1]}
    # Two scratch buffers grown to the widest fanout seen, instead of a
    # fresh ``values``/``prefixes`` pair allocated for every internal row
    # (tens of thousands of short-lived lists on deep arenas).
    values: List[int] = []
    prefixes: List[int] = []
    for row in range(size - 1, -1, -1):
        multiplier = multipliers[row]
        if multiplier == 0:
            continue
        kind = kinds[row]
        if kind == KIND_LITERAL:
            if negated[row]:
                banzhaf[variables[row]] -= multiplier
            else:
                banzhaf[variables[row]] += multiplier
            continue
        if kind == KIND_AND or kind == KIND_OR:
            kids = children[child_first[row]:child_last[row]]
            width = len(kids)
            if width > len(values):
                grow = width - len(values)
                values.extend([1] * grow)
                prefixes.extend([1] * grow)
            if kind == KIND_AND:
                for position in range(width):
                    values[position] = counts[kids[position]]
            else:
                for position in range(width):
                    child = kids[position]
                    values[position] = (
                        (1 << domain_sizes[child]) - counts[child])
            # Prefix/suffix sibling products, fused with the push.
            running = 1
            for position in range(width):
                prefixes[position] = running
                running *= values[position]
            suffix = 1
            for position in range(width - 1, -1, -1):
                multipliers[kids[position]] = (
                    multiplier * prefixes[position] * suffix)
                suffix *= values[position]
        elif kind == KIND_XOR:
            for child in children[child_first[row]:child_last[row]]:
                multipliers[child] = multiplier
    arena.results["banzhaf"] = banzhaf
    return banzhaf


def arena_model_count(arena: DTreeArena) -> int:
    """Exact model count of the root (reads the shared counts column)."""
    return arena_counts(arena)[arena.root]


# --------------------------------------------------------------------- #
# Shapley support: size-indexed model vectors over the arena
# --------------------------------------------------------------------- #


def _binomials(n: int) -> List[int]:
    return [math.comb(n, k) for k in range(n + 1)]


def _vector_convolve(left: List[int], right: List[int]) -> List[int]:
    result = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                result[i + j] += a * b
    return result


def _vector_complement(vector: List[int], n: int) -> List[int]:
    return [math.comb(n, k) - vector[k] for k in range(n + 1)]


def arena_models(arena: DTreeArena) -> List[List[int]]:
    """Size-indexed model vectors per row (the Shapley ``models`` pass).

    Entry ``k`` of row ``i``'s vector counts the models of the subtree
    that set exactly ``k`` domain variables true — the arena analogue of
    :func:`repro.core.shapley._fill_models`, cached as the ``models``
    payload column and shared by every variable's cofactor pass.
    """
    models = arena.payloads.get("models")
    if models is not None and models[-1] is not None:
        return models
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    if models is None:
        models = [None] * len(kinds)  # type: ignore[list-item]
    for row in range(len(kinds)):
        if models[row] is not None:
            continue
        kind = kinds[row]
        size = domain_sizes[row]
        if kind == KIND_TRUE:
            vector = _binomials(size)
        elif kind == KIND_FALSE:
            vector = [0] * (size + 1)
        elif kind == KIND_LITERAL:
            vector = [1, 0] if arena.negated[row] else [0, 1]
        elif kind == KIND_AND:
            vector = [1]
            for child in arena.child_rows(row):
                vector = _vector_convolve(vector, models[child])
        elif kind == KIND_OR:
            non_models = [1]
            for child in arena.child_rows(row):
                non_models = _vector_convolve(
                    non_models,
                    _vector_complement(models[child], domain_sizes[child]))
            vector = [math.comb(size, k) - non_models[k]
                      for k in range(size + 1)]
        elif kind == KIND_XOR:
            vector = [0] * (size + 1)
            for child in arena.child_rows(row):
                for k, value in enumerate(models[child]):
                    vector[k] += value
        else:
            raise ValueError(
                "Shapley computation requires a complete d-tree")
        models[row] = vector
    arena.payloads["models"] = models
    return models


def _relevant_rows(arena: DTreeArena, variable: int) -> List[bool]:
    """Rows on the restricted descent for ``variable`` (root included).

    A decomposable row forwards the variable to exactly one child;
    exclusive children all share the parent domain — so the relevant set
    is found top-down (backward row iteration) and evaluated bottom-up
    (forward iteration), both plain loops thanks to the postorder
    invariant.
    """
    relevant = [False] * len(arena.kinds)
    root = arena.root
    if variable in arena.domains[root]:
        relevant[root] = True
    domains = arena.domains
    for row in range(root, -1, -1):
        if not relevant[row]:
            continue
        for child in arena.child_rows(row):
            if variable in domains[child]:
                relevant[child] = True
    return relevant


def arena_cofactor_vectors(arena: DTreeArena, variable: int
                           ) -> Tuple[List[int], List[int]]:
    """Size vectors of ``phi[x:=1]`` / ``phi[x:=0]`` over ``domain - x``.

    The per-variable Shapley pass: restricted to the rows whose domain
    contains the variable, with untouched siblings read from the shared
    ``models`` payload (:func:`arena_models`).
    """
    models = arena_models(arena)
    relevant = _relevant_rows(arena, variable)
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    vectors: Dict[int, Tuple[List[int], List[int]]] = {}
    for row in range(len(kinds)):
        if not relevant[row]:
            continue
        kind = kinds[row]
        size = domain_sizes[row]
        if kind == KIND_TRUE:
            cof = _binomials(size - 1)
            result = (cof, list(cof))
        elif kind == KIND_FALSE:
            zeros = [0] * size
            result = (zeros, list(zeros))
        elif kind == KIND_LITERAL:
            # Only x-literals can be relevant (a literal's domain is {x}).
            negated = arena.negated[row]
            result = ([0] if negated else [1], [1] if negated else [0])
        elif kind == KIND_AND or kind == KIND_OR:
            conjunction = kind == KIND_AND
            positive: List[int] = [1]
            negative: List[int] = [1]
            for child in arena.child_rows(row):
                if relevant[child]:
                    child_positive, child_negative = vectors[child]
                    child_n = domain_sizes[child] - 1
                else:
                    child_positive = child_negative = models[child]
                    child_n = domain_sizes[child]
                if conjunction:
                    positive = _vector_convolve(positive, child_positive)
                    negative = _vector_convolve(negative, child_negative)
                else:
                    positive = _vector_convolve(
                        positive, _vector_complement(child_positive, child_n))
                    negative = _vector_convolve(
                        negative, _vector_complement(child_negative, child_n))
            if not conjunction:
                cof_size = size - 1
                positive = [math.comb(cof_size, k) - positive[k]
                            for k in range(cof_size + 1)]
                negative = [math.comb(cof_size, k) - negative[k]
                            for k in range(cof_size + 1)]
            result = (positive, negative)
        elif kind == KIND_XOR:
            cof_size = size - 1
            positive = [0] * (cof_size + 1)
            negative = [0] * (cof_size + 1)
            for child in arena.child_rows(row):
                child_positive, child_negative = vectors[child]
                for k, value in enumerate(child_positive):
                    positive[k] += value
                for k, value in enumerate(child_negative):
                    negative[k] += value
            result = (positive, negative)
        else:
            raise ValueError(
                "Shapley computation requires a complete d-tree")
        vectors[row] = result
    return vectors[arena.root]


# --------------------------------------------------------------------- #
# Bounds passes (partial trees): arena analogue of core/bounds.py
# --------------------------------------------------------------------- #


def arena_count_bounds(arena: DTreeArena) -> List[Tuple[int, int]]:
    """Model-count bounds per row (Fig. 2 count half), cached payload.

    Bit-identical to :func:`repro.core.bounds.count_bounds` on every
    subtree: DNF rows use the iDNF syntheses, inner rows the monotone
    interval combinations.
    """
    bounds = arena.payloads.get("count_bounds")
    if bounds is not None and bounds[-1] is not None:
        return bounds
    from repro.boolean.idnf import idnf_model_count, lower_idnf, upper_idnf
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    if bounds is None:
        bounds = [None] * len(kinds)  # type: ignore[list-item]
    for row in range(len(kinds)):
        if bounds[row] is not None:
            continue
        kind = kinds[row]
        if kind == KIND_TRUE:
            space = 1 << domain_sizes[row]
            pair = (space, space)
        elif kind == KIND_FALSE:
            pair = (0, 0)
        elif kind == KIND_LITERAL:
            pair = (1, 1)
        elif kind == KIND_DNF:
            function = arena.leaf_functions[row]
            pair = (idnf_model_count(lower_idnf(function)),
                    idnf_model_count(upper_idnf(function)))
        elif kind == KIND_AND:
            lower, upper = 1, 1
            for child in arena.child_rows(row):
                child_lower, child_upper = bounds[child]
                lower *= child_lower
                upper *= child_upper
            pair = (lower, upper)
        elif kind == KIND_OR:
            non_lower, non_upper = 1, 1
            for child in arena.child_rows(row):
                child_lower, child_upper = bounds[child]
                space = 1 << domain_sizes[child]
                non_lower *= space - child_upper
                non_upper *= space - child_lower
            space = 1 << domain_sizes[row]
            pair = (space - non_upper, space - non_lower)
        else:  # KIND_XOR
            lower, upper = 0, 0
            for child in arena.child_rows(row):
                child_lower, child_upper = bounds[child]
                lower += child_lower
                upper += child_upper
            pair = (lower, upper)
        bounds[row] = pair
    arena.payloads["count_bounds"] = bounds
    return bounds


def _arena_cofactor_count_bounds(arena: DTreeArena, variable: int,
                                 counts: List[Tuple[int, int]]
                                 ) -> Dict[int, Tuple[int, int]]:
    """Bounds on ``#phi[x := 0]`` per relevant row (optimization (4))."""
    cached = arena.results.get(("cofactor_count_bounds", variable))
    if cached is not None:
        return cached  # type: ignore[return-value]
    relevant = _relevant_rows(arena, variable)
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    from repro.boolean.idnf import idnf_model_count, lower_idnf, upper_idnf
    values: Dict[int, Tuple[int, int]] = {}
    for row in range(len(kinds)):
        if not relevant[row]:
            continue
        kind = kinds[row]
        if kind == KIND_TRUE:
            space = 1 << (domain_sizes[row] - 1)
            pair = (space, space)
        elif kind == KIND_FALSE:
            pair = (0, 0)
        elif kind == KIND_LITERAL:
            value = 1 if arena.negated[row] else 0
            pair = (value, value)
        elif kind == KIND_DNF:
            cofactor = arena.leaf_functions[row].cofactor(variable, False)
            pair = (idnf_model_count(lower_idnf(cofactor)),
                    idnf_model_count(upper_idnf(cofactor)))
        elif kind == KIND_AND:
            lower, upper = 1, 1
            for child in arena.child_rows(row):
                child_lower, child_upper = (values[child] if relevant[child]
                                            else counts[child])
                lower *= child_lower
                upper *= child_upper
            pair = (lower, upper)
        elif kind == KIND_OR:
            non_lower, non_upper = 1, 1
            for child in arena.child_rows(row):
                if relevant[child]:
                    child_lower, child_upper = values[child]
                    space = 1 << (domain_sizes[child] - 1)
                else:
                    child_lower, child_upper = counts[child]
                    space = 1 << domain_sizes[child]
                non_lower *= space - child_upper
                non_upper *= space - child_lower
            space = 1 << (domain_sizes[row] - 1)
            pair = (space - non_upper, space - non_lower)
        else:  # KIND_XOR
            lower = sum(values[child][0] for child in arena.child_rows(row))
            upper = sum(values[child][1] for child in arena.child_rows(row))
            pair = (lower, upper)
        values[row] = pair
    arena.results[("cofactor_count_bounds", variable)] = values
    return values


def arena_banzhaf_bounds(arena: DTreeArena, variable: int):
    """Fig. 2 Banzhaf/count bounds for one variable over the arena.

    Returns a :class:`repro.core.bounds.BanzhafBounds`, numerically
    identical to :func:`repro.core.bounds.bounds_for_variable` on the
    same tree — including the optimization (4) intersection with the
    cofactor-count-derived bounds.  Used by the snapshot evaluators
    (float tier, differential tests); the incremental AdaBan loop keeps
    the object-tree implementation, whose per-node caches survive path
    invalidation (an arena would be rebuilt per expansion).
    """
    from repro.core.bounds import BanzhafBounds, _leaf_banzhaf_bounds
    counts = arena_count_bounds(arena)
    cofactors = _arena_cofactor_count_bounds(arena, variable, counts)
    relevant = _relevant_rows(arena, variable)
    kinds = arena.kinds
    root = arena.root
    if not relevant[root]:
        count_lower, count_upper = counts[root]
        return BanzhafBounds(0, count_lower, 0, count_upper)
    values: Dict[int, Tuple[int, int]] = {}
    for row in range(len(kinds)):
        if not relevant[row]:
            continue
        kind = kinds[row]
        count_lower, count_upper = counts[row]
        if kind == KIND_TRUE or kind == KIND_FALSE:
            pair = (0, 0)
        elif kind == KIND_LITERAL:
            value = -1 if arena.negated[row] else 1
            pair = (value, value)
        elif kind == KIND_DNF:
            pair = _leaf_banzhaf_bounds(arena.leaf_functions[row], variable)
        elif kind == KIND_AND or kind == KIND_OR:
            target = None
            for child in arena.child_rows(row):
                if relevant[child]:
                    target = child
                    break
            if target is None:
                pair = (0, 0)
            else:
                target_lower, target_upper = values[target]
                lower_factor, upper_factor = 1, 1
                for child in arena.child_rows(row):
                    if child == target:
                        continue
                    child_lower, child_upper = counts[child]
                    if kind == KIND_AND:
                        lower_factor *= child_lower
                        upper_factor *= child_upper
                    else:
                        space = 1 << arena.domain_sizes[child]
                        lower_factor *= space - child_upper
                        upper_factor *= space - child_lower
                candidates = (target_lower * lower_factor,
                              target_lower * upper_factor,
                              target_upper * lower_factor,
                              target_upper * upper_factor)
                pair = (min(candidates), max(candidates))
        else:  # KIND_XOR
            lower = sum(values[child][0] for child in arena.child_rows(row))
            upper = sum(values[child][1] for child in arena.child_rows(row))
            pair = (lower, upper)
        if kind != KIND_LITERAL:
            # Optimization (4): intersect with #phi - 2 * #phi[x := 0].
            cof_lower, cof_upper = cofactors[row]
            pair = (max(pair[0], count_lower - 2 * cof_upper),
                    min(pair[1], count_upper - 2 * cof_lower))
        values[row] = pair
    lower, upper = values[root]
    count_lower, count_upper = counts[root]
    return BanzhafBounds(lower, count_lower, upper, count_upper)


# --------------------------------------------------------------------- #
# Float tier: log2-domain scores with tracked relative error
# --------------------------------------------------------------------- #
#
# Every quantity is a pair ``(log2(value), err)`` where ``err`` bounds the
# *relative* error of the represented value (|computed/true - 1| <= err,
# to first order).  Products add errors; log-domain additions keep the
# max; subtractions amplify by t/(1-t) where t = 2^(small - large) — near
# cancellation the bound blows up and we poison the result (``err = inf``)
# so the caller falls back to the exact tier.  Each operation also
# charges one FLOAT_ERROR_UNIT of rounding.


def log2_add(a: float, b: float) -> float:
    """``log2(2**a + 2**b)`` without overflow; -inf means zero."""
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    if a < b:
        a, b = b, a
    return a + math.log1p(2.0 ** (b - a)) / _LN2


def log2_sub(a: float, b: float) -> float:
    """``log2(2**a - 2**b)`` for ``a >= b``; returns -inf on cancellation."""
    if b == -math.inf:
        return a
    t = 2.0 ** (b - a)
    if t >= 1.0:
        return -math.inf
    return a + math.log1p(-t) / _LN2


def _sub_error(a: float, b: float, err: float) -> float:
    """Relative-error bound after ``2**a - 2**b`` (amplified near ties)."""
    if b == -math.inf:
        return err + FLOAT_ERROR_UNIT
    t = 2.0 ** (b - a)
    if t >= 1.0 - 1e-9:
        return math.inf
    return err * (1.0 + t) / (1.0 - t) + FLOAT_ERROR_UNIT


def arena_float_counts(arena: DTreeArena) -> Tuple[List[float], List[float]]:
    """Log2 model counts + relative-error bounds per row (complete trees).

    Cached as the ``float_counts`` / ``float_count_errs`` payload columns.
    Raises :class:`IncompleteArenaError` on undecomposed leaves — partial
    trees go through :func:`arena_float_surrogate` instead.
    """
    logs = arena.payloads.get("float_counts")
    errs = arena.payloads.get("float_count_errs")
    if logs is not None and logs[-1] is not None:
        return logs, errs
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    if logs is None:
        logs = [None] * len(kinds)  # type: ignore[list-item]
        errs = [None] * len(kinds)  # type: ignore[list-item]
    for row in range(len(kinds)):
        if logs[row] is not None:
            continue
        kind = kinds[row]
        if kind == KIND_TRUE:
            value, err = float(domain_sizes[row]), 0.0
        elif kind == KIND_FALSE:
            value, err = -math.inf, 0.0
        elif kind == KIND_LITERAL:
            value, err = 0.0, 0.0
        elif kind == KIND_AND:
            value, err = 0.0, 0.0
            for child in arena.child_rows(row):
                value += logs[child]
                err += errs[child] + FLOAT_ERROR_UNIT
        elif kind == KIND_OR:
            # #or = 2^d - prod(2^d_c - #c): accumulate the non-model
            # product in log space, then one (possibly cancelling) sub.
            non_log, err = 0.0, 0.0
            for child in arena.child_rows(row):
                child_non = log2_sub(float(domain_sizes[child]), logs[child])
                non_log += child_non
                err += _sub_error(float(domain_sizes[child]), logs[child],
                                  errs[child])
            space = float(domain_sizes[row])
            value = log2_sub(space, non_log)
            err = _sub_error(space, non_log, err)
        elif kind == KIND_XOR:
            value, err = -math.inf, 0.0
            for child in arena.child_rows(row):
                value = log2_add(value, logs[child])
                err = max(err, errs[child]) + FLOAT_ERROR_UNIT
        else:
            raise IncompleteArenaError(
                "float counting requires a complete d-tree; "
                "found an undecomposed leaf")
        logs[row] = value
        errs[row] = err
    arena.payloads["float_counts"] = logs
    arena.payloads["float_count_errs"] = errs
    return logs, errs


def arena_float_banzhaf(arena: DTreeArena
                        ) -> Dict[int, Tuple[float, float]]:
    """Float fused Banzhaf pass: ``{variable: (log2 |score|, rel_err)}``.

    Mirrors :func:`arena_banzhaf` in log2 space.  Banzhaf scores of
    monotone lineages are non-negative, but per-literal contributions
    carry signs (negated Shannon literals), so positive and negative
    mass accumulate separately and combine with one final subtraction —
    whose cancellation, if any, lands in the error bound.  A score of
    zero is ``-inf``.  Cached in ``results["float_banzhaf"]``.
    """
    cached = arena.results.get("float_banzhaf")
    if cached is not None:
        return cached  # type: ignore[return-value]
    logs, errs = arena_float_counts(arena)
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    size = len(kinds)
    multipliers: List[float] = [-math.inf] * size
    mult_errs: List[float] = [0.0] * size
    multipliers[size - 1] = 0.0
    positive: Dict[int, Tuple[float, float]] = {}
    negative: Dict[int, Tuple[float, float]] = {}
    for row in range(size - 1, -1, -1):
        multiplier = multipliers[row]
        if multiplier == -math.inf:
            continue
        mult_err = mult_errs[row]
        kind = kinds[row]
        if kind == KIND_LITERAL:
            bucket = negative if arena.negated[row] else positive
            variable = arena.variables[row]
            log, err = bucket.get(variable, (-math.inf, 0.0))
            bucket[variable] = (log2_add(log, multiplier),
                                max(err, mult_err) + FLOAT_ERROR_UNIT)
        elif kind == KIND_AND or kind == KIND_OR:
            conjunction = kind == KIND_AND
            child_rows = list(arena.child_rows(row))
            values: List[float] = []
            value_errs: List[float] = []
            for child in child_rows:
                if conjunction:
                    values.append(logs[child])
                    value_errs.append(errs[child])
                else:
                    space = float(domain_sizes[child])
                    values.append(log2_sub(space, logs[child]))
                    value_errs.append(
                        _sub_error(space, logs[child], errs[child]))
            count = len(values)
            prefixes = [0.0] * (count + 1)
            prefix_errs = [0.0] * (count + 1)
            for position in range(count):
                prefixes[position + 1] = prefixes[position] + values[position]
                prefix_errs[position + 1] = (
                    prefix_errs[position] + value_errs[position]
                    + FLOAT_ERROR_UNIT)
            suffix = 0.0
            suffix_err = 0.0
            for position in range(count - 1, -1, -1):
                child = child_rows[position]
                contribution = multiplier + prefixes[position] + suffix
                contribution_err = (mult_err + prefix_errs[position]
                                    + suffix_err + FLOAT_ERROR_UNIT)
                if multipliers[child] == -math.inf:
                    multipliers[child] = contribution
                    mult_errs[child] = contribution_err
                else:
                    multipliers[child] = log2_add(
                        multipliers[child], contribution)
                    mult_errs[child] = (max(mult_errs[child],
                                            contribution_err)
                                        + FLOAT_ERROR_UNIT)
                suffix += values[position]
                suffix_err += value_errs[position] + FLOAT_ERROR_UNIT
        elif kind == KIND_XOR:
            for child in arena.child_rows(row):
                if multipliers[child] == -math.inf:
                    multipliers[child] = multiplier
                    mult_errs[child] = mult_err
                else:
                    multipliers[child] = log2_add(
                        multipliers[child], multiplier)
                    mult_errs[child] = (max(mult_errs[child], mult_err)
                                        + FLOAT_ERROR_UNIT)
    scores: Dict[int, Tuple[float, float]] = {}
    for variable in arena.domains[size - 1]:
        pos_log, pos_err = positive.get(variable, (-math.inf, 0.0))
        neg_log, neg_err = negative.get(variable, (-math.inf, 0.0))
        if neg_log == -math.inf:
            scores[variable] = (pos_log, pos_err)
        elif pos_log >= neg_log:
            scores[variable] = (log2_sub(pos_log, neg_log),
                                _sub_error(pos_log, neg_log,
                                           max(pos_err, neg_err)))
        else:
            # Negative net score cannot happen for monotone lineages;
            # poison rather than mis-rank if it ever does.
            scores[variable] = (log2_sub(neg_log, pos_log), math.inf)
    arena.results["float_banzhaf"] = scores
    return scores


def _dnf_leaf_estimates(function: DNF, domain_size: int
                        ) -> Tuple[float, Dict[int, float]]:
    """Closed-form independence estimates for an undecomposed DNF leaf.

    Treating clauses as independent events over the leaf's ``d``-variable
    domain, a clause of width ``w`` is satisfied with probability
    ``2**-w``, so::

        log2(count_est)      = d + sum_c log2(1 - 2**-w_c)          # non-models
        log2(banzhaf_est(x)) = (d-1) + sum_{c w/o x} log2(1 - 2**-w_c)
                               + log2(1 - prod_{c with x} (1 - 2**-(w_c-1)))

    (the last factor is the probability that flipping ``x`` to true
    fires at least one clause containing it).  Exactness is irrelevant
    here — only the surrogate *order* is consumed.  Returns
    ``(log2 count_est, {variable: log2 banzhaf_est})``.
    """
    clauses = list(function.clauses)
    widths = [len(clause) for clause in clauses]
    per_clause_miss = [log2_sub(0.0, -float(width)) for width in widths]
    total_miss = sum(per_clause_miss)
    count_est = log2_sub(float(domain_size), float(domain_size) + total_miss)
    estimates: Dict[int, float] = {}
    by_variable: Dict[int, List[int]] = {}
    for clause, width in zip(clauses, widths):
        for variable in clause:
            by_variable.setdefault(variable, []).append(width)
    for variable, member_widths in by_variable.items():
        without = total_miss - sum(
            per_clause_miss[i] for i, clause in enumerate(clauses)
            if variable in clause)
        # ln prod_{c with x} (1 - 2**-(w_c - 1)); width-1 clause {x}
        # always fires => product 0 => flip factor log2(1) = 0.
        if any(width == 1 for width in member_widths):
            flip = 0.0
        else:
            ln_stay = sum(math.log1p(-(2.0 ** -(width - 1)))
                          for width in member_widths)
            if ln_stay == 0.0:
                estimates[variable] = -math.inf
                continue
            flip = math.log2(-math.expm1(ln_stay))
        estimates[variable] = (domain_size - 1) + without + flip
    return count_est, estimates


def arena_float_surrogate(arena: DTreeArena) -> Dict[int, float]:
    """Surrogate Banzhaf order estimates for a (possibly partial) tree.

    Runs the same fused pass shape as :func:`arena_float_banzhaf` but
    replaces every undecomposed ``KIND_DNF`` leaf with the closed-form
    independence estimates of :func:`_dnf_leaf_estimates`.  The returned
    ``{variable: log2 estimate}`` carries **order information only** — no
    error bound, no exactness claim; callers must mark results as
    non-converged surrogates.  Cached in ``results["float_surrogate"]``.
    """
    cached = arena.results.get("float_surrogate")
    if cached is not None:
        return cached  # type: ignore[return-value]
    kinds = arena.kinds
    domain_sizes = arena.domain_sizes
    size = len(kinds)
    # Bottom-up: estimated log2 counts (exact rules, DNF rows estimated).
    logs: List[float] = [0.0] * size
    leaf_scores: List[Optional[Dict[int, float]]] = [None] * size
    for row in range(size):
        kind = kinds[row]
        if kind == KIND_TRUE:
            logs[row] = float(domain_sizes[row])
        elif kind == KIND_FALSE:
            logs[row] = -math.inf
        elif kind == KIND_LITERAL:
            logs[row] = 0.0
        elif kind == KIND_DNF:
            count_est, estimates = _dnf_leaf_estimates(
                arena.leaf_functions[row], domain_sizes[row])
            logs[row] = count_est
            leaf_scores[row] = estimates
        elif kind == KIND_AND:
            logs[row] = sum(logs[child] for child in arena.child_rows(row))
        elif kind == KIND_OR:
            non_log = sum(
                log2_sub(float(domain_sizes[child]), logs[child])
                for child in arena.child_rows(row))
            logs[row] = log2_sub(float(domain_sizes[row]), non_log)
        else:  # KIND_XOR
            value = -math.inf
            for child in arena.child_rows(row):
                value = log2_add(value, logs[child])
            logs[row] = value
    # Top-down multipliers, literals and DNF leaves collect estimates.
    multipliers: List[float] = [-math.inf] * size
    multipliers[size - 1] = 0.0
    estimates: Dict[int, float] = {
        variable: -math.inf for variable in arena.domains[size - 1]}
    for row in range(size - 1, -1, -1):
        multiplier = multipliers[row]
        if multiplier == -math.inf:
            continue
        kind = kinds[row]
        if kind == KIND_LITERAL:
            if not arena.negated[row]:
                variable = arena.variables[row]
                estimates[variable] = log2_add(
                    estimates.get(variable, -math.inf), multiplier)
            # Negated Shannon literals would subtract; the surrogate
            # keeps the dominant positive mass (order heuristic).
        elif kind == KIND_DNF:
            for variable, estimate in leaf_scores[row].items():
                # Leaf estimates are absolute over the leaf domain; the
                # multiplier rescales them into the root space.
                estimates[variable] = log2_add(
                    estimates.get(variable, -math.inf),
                    multiplier + estimate - (domain_sizes[row] - 1))
        elif kind == KIND_AND or kind == KIND_OR:
            conjunction = kind == KIND_AND
            child_rows = list(arena.child_rows(row))
            values = []
            for child in child_rows:
                if conjunction:
                    values.append(logs[child])
                else:
                    values.append(log2_sub(float(domain_sizes[child]),
                                           logs[child]))
            count = len(values)
            prefixes = [0.0] * (count + 1)
            for position in range(count):
                prefixes[position + 1] = prefixes[position] + values[position]
            suffix = 0.0
            for position in range(count - 1, -1, -1):
                child = child_rows[position]
                contribution = multiplier + prefixes[position] + suffix
                multipliers[child] = log2_add(
                    multipliers[child], contribution)
                suffix += values[position]
        else:  # KIND_XOR
            for child in arena.child_rows(row):
                multipliers[child] = log2_add(
                    multipliers[child], multiplier)
    # Wait-for-DNF leaves rescaled by multiplier - (d_leaf - 1): the leaf
    # estimate already includes its own 2^(d-1) factor, the multiplier
    # contributes the sibling product over the remaining variables.
    arena.results["float_surrogate"] = estimates
    return estimates


def pow2_int(log2_value: float, err: float = 0.0, *, ceil: bool = False
             ) -> int:
    """Exact integer ``2**(log2_value +- err)``, floor or ceil.

    Converts a float-tier log score into an exact bound the interval
    machinery understands: ``floor(2**(log2_value - err'))`` or
    ``ceil(2**(log2_value + err'))`` where ``err'`` is ``err`` converted
    from relative error to a log2 half-width.  Works for arbitrarily
    large magnitudes via mantissa shifting; clamps at zero; ``-inf``
    maps to 0 (and 1 when ``ceil`` with positive error is requested of a
    genuinely unknown zero — callers pass ``-inf`` only for exact zero,
    which stays 0).
    """
    if log2_value == -math.inf:
        return 0
    if not math.isfinite(log2_value) or not math.isfinite(err):
        raise ValueError("cannot convert an unbounded float score")
    half_width = err / _LN2  # log2(1 + err) <= err / ln 2
    target = log2_value + half_width if ceil else log2_value - half_width
    floor_target = math.floor(target)
    frac = target - floor_target
    # 2**frac in [1, 2); scale into a 64-bit mantissa with 1-ulp slack.
    mantissa = int(2.0 ** (frac + 53))
    slack = 2
    if ceil:
        mantissa += slack
        shift = floor_target - 53
        if shift >= 0:
            result = mantissa << shift
        else:
            divisor = 1 << (-shift)
            result = -((-mantissa) // divisor)  # ceil division
        return max(result, 1)
    mantissa = max(mantissa - slack, 0)
    shift = floor_target - 53
    if shift >= 0:
        result = mantissa << shift
    else:
        result = mantissa >> (-shift)
    return max(result, 0)
