"""Exhaustive d-tree compilation (the ExaBan front end).

``compile_dnf`` turns a positive DNF into a *complete* d-tree whose leaves
are literals or constants, using the strategy described in Section 3.1 of the
paper:

1. absorption and factoring out variables that occur in every clause
   (producing an independent-AND with literal children);
2. independence partitioning via connected components of the clause graph
   (producing an independent-OR);
3. otherwise, Shannon expansion on a heuristically chosen variable
   (producing a mutually-exclusive OR).

Shannon expansion is the only step that can blow up; a
:class:`CompilationBudget` caps the number of expansions and the wall-clock
time so that hard instances *fail* rather than hang, mirroring the one-hour
timeout used in the paper's experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.dnf import ConstantTrue, DNF
from repro.boolean.operations import factor_common_variables, independent_components
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


class CompilationLimitReached(Exception):
    """Raised when compilation exceeds its Shannon-step or time budget."""


@dataclass
class CompilationBudget:
    """Resource budget for d-tree compilation.

    Attributes
    ----------
    max_shannon_steps:
        Maximum number of Shannon expansions; ``None`` means unlimited.
    timeout_seconds:
        Wall-clock limit for the whole compilation; ``None`` means unlimited.
    """

    max_shannon_steps: Optional[int] = None
    timeout_seconds: Optional[float] = None
    shannon_steps: int = 0
    started_at: float = field(default_factory=time.monotonic)

    def charge_shannon(self) -> None:
        """Record one Shannon expansion and enforce the limits."""
        self.shannon_steps += 1
        if (self.max_shannon_steps is not None
                and self.shannon_steps > self.max_shannon_steps):
            raise CompilationLimitReached(
                f"exceeded {self.max_shannon_steps} Shannon expansion steps"
            )
        self.check_time()

    def check_time(self) -> None:
        """Enforce the wall-clock limit."""
        if (self.timeout_seconds is not None
                and time.monotonic() - self.started_at > self.timeout_seconds):
            raise CompilationLimitReached(
                f"exceeded {self.timeout_seconds} seconds"
            )


def compile_dnf(function: DNF,
                heuristic: Heuristic = select_most_frequent,
                budget: CompilationBudget | None = None) -> DTreeNode:
    """Compile a positive DNF into a complete d-tree.

    Parameters
    ----------
    function:
        The positive DNF to compile (typically a query lineage).
    heuristic:
        Variable-selection heuristic for Shannon expansion.
    budget:
        Optional resource budget; :class:`CompilationLimitReached` is raised
        when it is exhausted.
    """
    if budget is None:
        budget = CompilationBudget()
    return _compile(function, heuristic, budget)


def _compile(function: DNF, heuristic: Heuristic,
             budget: CompilationBudget) -> DTreeNode:
    budget.check_time()

    if function.is_false():
        return FalseLeaf(function.domain)

    # Absorption first: it can silence variables (e.g. (x) absorbs (x & y)),
    # and silent variables must be split off before independence partitioning.
    function = function.absorb()

    # Separate silent domain variables: phi over D equals (phi over vars) ⊙ 1
    # over the silent variables, and the TrueLeaf accounts for their 2^k
    # assignments.
    occurring = function.variables
    silent = function.domain - occurring
    if silent:
        core = _compile(function.restricted_domain(), heuristic, budget)
        return DecompAnd([core, TrueLeaf(silent)])

    if function.is_single_literal():
        return LiteralLeaf(function.single_literal())

    # Factor out variables common to all clauses: phi = x1 & ... & xk & rest.
    try:
        common, residual = factor_common_variables(function)
    except ConstantTrue as constant:
        # Some clause consists solely of the common variables, so the whole
        # function is the conjunction of those literals (times the constant 1
        # over any leftover domain variables).
        common = function.common_variables()
        literals: list[DTreeNode] = [LiteralLeaf(v) for v in sorted(common)]
        if constant.domain:
            literals.append(TrueLeaf(constant.domain))
        return DecompAnd(literals) if len(literals) > 1 else literals[0]
    if common:
        literals = [LiteralLeaf(v) for v in sorted(common)]
        residual_node = _compile(residual, heuristic, budget)
        return DecompAnd(literals + [residual_node])

    # Independence partitioning: split into variable-disjoint components.
    components = independent_components(function)
    if len(components) > 1:
        children = [_compile(component, heuristic, budget)
                    for component in components]
        return DecompOr(children)

    # Shannon expansion on a heuristically selected variable.
    variable = heuristic(function)
    budget.charge_shannon()
    negative_cofactor = function.cofactor(variable, False)
    try:
        positive_cofactor = function.cofactor(variable, True)
        positive_node: DTreeNode = _compile(positive_cofactor, heuristic, budget)
    except ConstantTrue as constant:
        positive_node = TrueLeaf(constant.domain)
    positive_branch = DecompAnd([LiteralLeaf(variable), positive_node])
    negative_branch = DecompAnd([
        LiteralLeaf(variable, negated=True),
        _compile(negative_cofactor, heuristic, budget),
    ])
    return ExclusiveOr([positive_branch, negative_branch])
