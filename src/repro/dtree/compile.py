"""Exhaustive d-tree compilation (the ExaBan front end).

``compile_dnf`` turns a positive DNF into a *complete* d-tree whose leaves
are literals or constants, using the strategy described in Section 3.1 of the
paper:

1. absorption and factoring out variables that occur in every clause
   (producing an independent-AND with literal children);
2. independence partitioning via connected components of the clause graph
   (producing an independent-OR);
3. otherwise, Shannon expansion on a heuristically chosen variable
   (producing a mutually-exclusive OR).

Shannon expansion is the only step that can blow up; a
:class:`CompilationBudget` caps the number of expansions and the wall-clock
time so that hard instances *fail* rather than hang, mirroring the one-hour
timeout used in the paper's experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.boolean.dnf import ConstantTrue, DNF
from repro.boolean.operations import factor_common_variables, independent_components
from repro.dtree.arena import ArenaBuilder, install_arena
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)


class CompilationLimitReached(Exception):
    """Raised when compilation exceeds its Shannon-step or time budget."""


@dataclass
class CompilationBudget:
    """Resource budget for d-tree compilation.

    Attributes
    ----------
    max_shannon_steps:
        Maximum number of Shannon expansions; ``None`` means unlimited.
    timeout_seconds:
        Wall-clock limit for the whole compilation; ``None`` means unlimited.
    """

    max_shannon_steps: Optional[int] = None
    timeout_seconds: Optional[float] = None
    shannon_steps: int = 0
    started_at: float = field(default_factory=time.monotonic)

    def charge_shannon(self) -> None:
        """Record one Shannon expansion and enforce the limits."""
        self.shannon_steps += 1
        if (self.max_shannon_steps is not None
                and self.shannon_steps > self.max_shannon_steps):
            raise CompilationLimitReached(
                f"exceeded {self.max_shannon_steps} Shannon expansion steps"
            )
        self.check_time()

    def check_time(self) -> None:
        """Enforce the wall-clock limit."""
        if (self.timeout_seconds is not None
                and time.monotonic() - self.started_at > self.timeout_seconds):
            raise CompilationLimitReached(
                f"exceeded {self.timeout_seconds} seconds"
            )


def compile_dnf(function: DNF,
                heuristic: Heuristic = select_most_frequent,
                budget: CompilationBudget | None = None,
                arena_builder: Optional[ArenaBuilder] = None) -> DTreeNode:
    """Compile a positive DNF into a complete d-tree.

    The compilation is **iterative** (an explicit work stack replaces the
    call stack), so deep Shannon chains -- one expansion per level -- never
    hit the interpreter recursion limit.  Decomposition decisions, their
    order, and the budget charging are exactly those of the recursive
    formulation.

    Parameters
    ----------
    function:
        The positive DNF to compile (typically a query lineage).
    heuristic:
        Variable-selection heuristic for Shannon expansion.
    budget:
        Optional resource budget; :class:`CompilationLimitReached` is raised
        when it is exhausted.
    arena_builder:
        Optional :class:`~repro.dtree.arena.ArenaBuilder`: every node is
        emitted as an arena row the moment it is constructed (children
        always exist before their parent, so the construction order *is*
        a valid postorder), and on success the sealed arena is installed
        in the root's cache — the subsequent
        :func:`~repro.dtree.arena.arena_of` call costs a dict lookup
        instead of a flattening walk.  On a budget failure the partially
        filled builder is simply discarded by the caller.
    """
    if budget is None:
        budget = CompilationBudget()

    def emit(node: DTreeNode) -> DTreeNode:
        if arena_builder is not None:
            arena_builder.add(node)
        return node

    # Work frames: ("open", function) analyzes one sub-function depth-first;
    # the other tags combine already-built children (kept on ``results``)
    # into an inner node once their subtrees are complete.
    work: list[tuple] = [("open", function)]
    results: list[DTreeNode] = []
    while work:
        frame = work.pop()
        tag = frame[0]

        if tag == "open":
            current: DNF = frame[1]
            budget.check_time()

            if current.is_false():
                results.append(emit(FalseLeaf(current.domain)))
                continue

            # Absorption first: it can silence variables (e.g. (x) absorbs
            # (x & y)), and silent variables must be split off before
            # independence partitioning.
            current = current.absorb()

            # Separate silent domain variables: phi over D equals (phi over
            # vars) ⊙ 1 over the silent variables, and the TrueLeaf accounts
            # for their 2^k assignments.
            silent = current.silent_variables()
            if silent:
                work.append(("silent", silent, current.domain))
                work.append(("open", current.restricted_domain()))
                continue

            if current.is_single_literal():
                results.append(emit(LiteralLeaf(current.single_literal())))
                continue

            # Factor out common variables: phi = x1 & ... & xk & rest.
            try:
                common, residual = factor_common_variables(current)
            except ConstantTrue as constant:
                # Some clause consists solely of the common variables, so the
                # whole function is the conjunction of those literals (times
                # the constant 1 over any leftover domain variables).
                common = current.common_variables()
                literals: list[DTreeNode] = [
                    emit(LiteralLeaf(v)) for v in sorted(common)
                ]
                if constant.domain:
                    literals.append(emit(TrueLeaf(constant.domain)))
                results.append(
                    emit(DecompAnd(literals, domain=current.domain))
                    if len(literals) > 1 else literals[0])
                continue
            if common:
                work.append(("factored", sorted(common), current.domain))
                work.append(("open", residual))
                continue

            # Independence partitioning: variable-disjoint components.
            components = independent_components(current)
            if len(components) > 1:
                work.append(("or", len(components), current.domain))
                for component in reversed(components):
                    work.append(("open", component))
                continue

            # Shannon expansion on a heuristically selected variable.
            variable = heuristic(current)
            budget.charge_shannon()
            negative_cofactor = current.cofactor(variable, False)
            try:
                positive_cofactor = current.cofactor(variable, True)
            except ConstantTrue as constant:
                work.append(("shannon", variable, constant.domain,
                             current.domain))
                work.append(("open", negative_cofactor))
            else:
                work.append(("shannon", variable, None, current.domain))
                work.append(("open", negative_cofactor))
                work.append(("open", positive_cofactor))
            continue

        if tag == "silent":
            core = results.pop()
            results.append(emit(DecompAnd([core, emit(TrueLeaf(frame[1]))],
                                          domain=frame[2])))
        elif tag == "factored":
            residual_node = results.pop()
            literals = [emit(LiteralLeaf(v)) for v in frame[1]]
            results.append(emit(DecompAnd(literals + [residual_node],
                                          domain=frame[2])))
        elif tag == "or":
            count = frame[1]
            children = results[-count:]
            del results[-count:]
            results.append(emit(DecompOr(children, domain=frame[2])))
        else:  # "shannon"
            variable, constant_domain, domain = frame[1], frame[2], frame[3]
            if constant_domain is None:
                positive_node, negative_node = results[-2], results[-1]
                del results[-2:]
            else:
                negative_node = results.pop()
                positive_node = emit(TrueLeaf(constant_domain))
            results.append(emit(ExclusiveOr([
                emit(DecompAnd([emit(LiteralLeaf(variable)), positive_node],
                               domain=domain)),
                emit(DecompAnd([emit(LiteralLeaf(variable, negated=True)),
                                negative_node], domain=domain)),
            ], domain=domain)))

    root = results[0]
    if arena_builder is not None:
        install_arena(root, arena_builder)
    return root
