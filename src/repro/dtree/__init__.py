"""Decomposition trees (d-trees).

A d-tree (Definition 8 of the paper, originally from anytime approximation in
probabilistic databases [22]) represents a Boolean function as a tree whose
inner nodes are logical connectives annotated with structural information:

* ``DECOMP_AND`` (the paper's ``⊙``): conjunction of functions over pairwise
  disjoint variable sets;
* ``DECOMP_OR`` (``⊗``): disjunction of functions over pairwise disjoint
  variable sets;
* ``EXCLUSIVE_OR`` (``⊕``): disjunction of mutually exclusive functions over
  the same variable set (produced by Shannon expansion).

Leaves are literals, constants, or --- in *partial* d-trees used by the
anytime algorithms --- arbitrary positive DNF functions.

The package provides:

* :mod:`repro.dtree.nodes` -- the node classes;
* :mod:`repro.dtree.compile` -- the exhaustive compiler used by ExaBan;
* :mod:`repro.dtree.incremental` -- the step-wise compiler used by AdaBan;
* :mod:`repro.dtree.heuristics` -- Shannon-variable selection heuristics.
"""

from repro.dtree.compile import CompilationBudget, CompilationLimitReached, compile_dnf
from repro.dtree.heuristics import (
    HEURISTICS,
    select_max_depth_reduction,
    select_most_frequent,
)
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    DTreeNode,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
)

__all__ = [
    "CompilationBudget",
    "CompilationLimitReached",
    "DNFLeaf",
    "DTreeNode",
    "DecompAnd",
    "DecompOr",
    "ExclusiveOr",
    "FalseLeaf",
    "HEURISTICS",
    "IncrementalCompiler",
    "LiteralLeaf",
    "TrueLeaf",
    "compile_dnf",
    "select_max_depth_reduction",
    "select_most_frequent",
]
