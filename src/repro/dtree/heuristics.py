"""Shannon-expansion variable selection heuristics.

When a DNF can be neither factored nor split into independent components the
compiler must apply Shannon expansion on some variable.  The paper (Section
3.1, following [22]) picks the variable that appears most often; other
heuristics are possible, e.g. picking a variable whose conditioning enables
independence partitioning.  Both are provided here, plus a degenerate
first-variable heuristic used to demonstrate the effect in the ablation
benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.boolean.bitset import count_components
from repro.boolean.dnf import DNF, kernel_enabled
from repro.boolean.operations import clause_components

#: A heuristic maps a DNF to the variable to expand on.
Heuristic = Callable[[DNF], int]


def select_most_frequent(function: DNF) -> int:
    """Pick the variable occurring in the largest number of clauses.

    Ties are broken by smallest variable id for determinism.  This is the
    paper's default heuristic.
    """
    frequencies = function.variable_frequencies()
    if not frequencies:
        raise ValueError("cannot select a variable from a constant function")
    return min(frequencies, key=lambda v: (-frequencies[v], v))


def select_first(function: DNF) -> int:
    """Pick the smallest variable id (intentionally naive; ablation only)."""
    variables = function.variables
    if not variables:
        raise ValueError("cannot select a variable from a constant function")
    return min(variables)


def select_max_depth_reduction(function: DNF, candidates: int = 8) -> int:
    """Pick the variable whose removal best disconnects the clause graph.

    Among the ``candidates`` most frequent variables, choose the one whose
    deletion from all clauses yields the largest number of connected
    components (ties broken by frequency, then id).  This approximates the
    "conditioning enables independence partitioning" heuristic mentioned in
    the paper.
    """
    frequencies = function.variable_frequencies()
    if not frequencies:
        raise ValueError("cannot select a variable from a constant function")
    ranked = sorted(frequencies, key=lambda v: (-frequencies[v], v))[:candidates]
    best_variable = ranked[0]
    best_key = (-1, 0, 0)
    use_kernel = kernel_enabled()
    if use_kernel:
        kernel = function._bitset()
    for variable in ranked:
        if use_kernel:
            # Delete the variable's bit from every clause mask and count the
            # remaining connected components -- same union-find, no
            # frozenset churn per candidate.
            bit = 1 << kernel.index()[variable]
            reduced_masks = [mask & ~bit for mask in kernel.masks
                             if mask & ~bit]
            components = (count_components(reduced_masks)
                          if reduced_masks else 0)
        else:
            reduced_clauses = [
                clause - {variable}
                for clause in function.clauses if clause - {variable}
            ]
            components = (len(clause_components(reduced_clauses))
                          if reduced_clauses else 0)
        key = (components, frequencies[variable], -variable)
        if key > best_key:
            best_key = key
            best_variable = variable
    return best_variable


HEURISTICS: Dict[str, Heuristic] = {
    "most_frequent": select_most_frequent,
    "first": select_first,
    "max_split": select_max_depth_reduction,
}
