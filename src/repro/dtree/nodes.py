"""D-tree node classes.

Nodes are lightweight mutable objects: the exhaustive compiler builds a tree
once and never changes it, while the incremental compiler used by AdaBan
replaces leaves in place and therefore needs parent pointers and cache
invalidation.  Every node knows the variable domain of the function it
represents; the structural invariants are:

* children of a :class:`DecompAnd` or :class:`DecompOr` have pairwise
  disjoint domains whose union is the parent's domain;
* children of an :class:`ExclusiveOr` all have exactly the parent's domain;
* every variable of the parent's domain belongs to exactly one child of a
  decomposable node.

``validate()`` checks these invariants (used by tests and assertions).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.boolean.dnf import DNF


class DTreeNode:
    """Base class for d-tree nodes."""

    __slots__ = ("parent", "_cache")

    def __init__(self) -> None:
        self.parent: Optional[DTreeNode] = None
        #: Per-node scratch cache used by the bounds machinery; cleared by
        #: :meth:`invalidate`.
        self._cache: Dict[object, object] = {}

    # -- structure ----------------------------------------------------- #

    @property
    def domain(self) -> FrozenSet[int]:
        """Variables the represented function is defined over."""
        raise NotImplementedError

    def children(self) -> List["DTreeNode"]:
        """Child nodes (empty for leaves)."""
        return []

    def is_leaf(self) -> bool:
        """``True`` for leaf nodes."""
        return not self.children()

    def iter_nodes(self) -> Iterator["DTreeNode"]:
        """Iterate over the subtree rooted at this node (pre-order)."""
        stack: List[DTreeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def iter_leaves(self) -> Iterator["DTreeNode"]:
        """Iterate over the leaves of the subtree."""
        for node in self.iter_nodes():
            if node.is_leaf():
                yield node

    def num_nodes(self) -> int:
        """Number of nodes in the subtree."""
        return sum(1 for _ in self.iter_nodes())

    # -- caching ------------------------------------------------------- #

    def cache_get(self, key: object) -> object | None:
        """Look up a cached value for this node."""
        return self._cache.get(key)

    def cache_set(self, key: object, value: object) -> None:
        """Store a cached value for this node."""
        self._cache[key] = value

    def invalidate(self) -> None:
        """Clear the cache of this node and of all ancestors.

        Called by the incremental compiler after a leaf expansion so that the
        bounds of the nodes along the path to the root are recomputed while
        untouched subtrees keep their cached bounds (the paper's optimization
        (2) in Section 3.2.4).
        """
        node: Optional[DTreeNode] = self
        while node is not None:
            node._cache.clear()
            node = node.parent

    # -- semantics helpers --------------------------------------------- #

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        """Evaluate the represented function (used for validation)."""
        raise NotImplementedError

    def is_complete(self) -> bool:
        """``True`` iff every leaf is a literal or a constant."""
        return all(not isinstance(leaf, DNFLeaf) for leaf in self.iter_leaves())

    def validate(self) -> None:
        """Check the structural invariants of the subtree; raise on violation."""
        for node in self.iter_nodes():
            node._validate_node()

    def _validate_node(self) -> None:
        pass

    def replace_child(self, old: "DTreeNode", new: "DTreeNode") -> None:
        """Replace a direct child (used by the incremental compiler)."""
        raise TypeError(f"{type(self).__name__} has no children to replace")

    def clone_shallow(self, children: List["DTreeNode"]) -> "DTreeNode":
        """A fresh node with the same payload but the given children.

        Leaves ignore ``children``; inner nodes adopt them.  This is the
        per-node hook behind :func:`repro.dtree.serialize.clone_tree`,
        which copies whole (possibly partial) trees iteratively so that a
        resumed compilation never mutates a cached or persisted tree.
        """
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Leaves
# ---------------------------------------------------------------------- #


class TrueLeaf(DTreeNode):
    """The constant 1 over a (possibly empty) variable domain."""

    __slots__ = ("_domain",)

    def __init__(self, domain: Iterable[int] = ()) -> None:
        super().__init__()
        self._domain = frozenset(int(v) for v in domain)

    @property
    def domain(self) -> FrozenSet[int]:
        return self._domain

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        return True

    def clone_shallow(self, children: List[DTreeNode]) -> "TrueLeaf":
        return TrueLeaf(self._domain)

    def __repr__(self) -> str:
        return f"TrueLeaf(|domain|={len(self._domain)})"


class FalseLeaf(DTreeNode):
    """The constant 0 over a (possibly empty) variable domain."""

    __slots__ = ("_domain",)

    def __init__(self, domain: Iterable[int] = ()) -> None:
        super().__init__()
        self._domain = frozenset(int(v) for v in domain)

    @property
    def domain(self) -> FrozenSet[int]:
        return self._domain

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        return False

    def clone_shallow(self, children: List[DTreeNode]) -> "FalseLeaf":
        return FalseLeaf(self._domain)

    def __repr__(self) -> str:
        return f"FalseLeaf(|domain|={len(self._domain)})"


class LiteralLeaf(DTreeNode):
    """A single literal ``x`` or ``¬x`` over the one-variable domain ``{x}``.

    Negative literals only ever arise as the markers introduced by Shannon
    expansion (``(x ⊙ phi[x:=1]) ⊕ (¬x ⊙ phi[x:=0])``); the lineage itself is
    positive.
    """

    __slots__ = ("variable", "negated", "_domain")

    def __init__(self, variable: int, negated: bool = False) -> None:
        super().__init__()
        self.variable = int(variable)
        self.negated = bool(negated)
        # The one-variable domain is read on every evaluation pass; build
        # the frozenset once instead of per property access.
        self._domain = frozenset((self.variable,))

    @property
    def domain(self) -> FrozenSet[int]:
        return self._domain

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        value = self.variable in true_variables
        return not value if self.negated else value

    def clone_shallow(self, children: List[DTreeNode]) -> "LiteralLeaf":
        return LiteralLeaf(self.variable, self.negated)

    def __repr__(self) -> str:
        prefix = "~" if self.negated else ""
        return f"LiteralLeaf({prefix}x{self.variable})"


class DNFLeaf(DTreeNode):
    """A not-yet-decomposed positive DNF function (partial d-trees only)."""

    __slots__ = ("function", "priority")

    def __init__(self, function: DNF) -> None:
        super().__init__()
        if function.is_false():
            raise ValueError("use FalseLeaf for the constant 0")
        if function.is_single_literal():
            raise ValueError("use LiteralLeaf for single literals")
        self.function = function
        #: Expansion priority used by the incremental compiler (precomputed
        #: because leaf selection happens on every expansion step).
        self.priority = (function.num_clauses(), function.size())

    @property
    def domain(self) -> FrozenSet[int]:
        return self.function.domain

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        return self.function.evaluate(true_variables)

    def clone_shallow(self, children: List[DTreeNode]) -> "DNFLeaf":
        # DNF objects are immutable, so the function is shared by design.
        return DNFLeaf(self.function)

    def __repr__(self) -> str:
        return (f"DNFLeaf(vars={len(self.function.variables)}, "
                f"clauses={self.function.num_clauses()})")


# ---------------------------------------------------------------------- #
# Inner nodes
# ---------------------------------------------------------------------- #


class _InnerNode(DTreeNode):
    """Shared implementation of inner nodes (n-ary)."""

    __slots__ = ("_children", "_domain")

    #: Human-readable operator symbol; overridden by subclasses.
    symbol = "?"

    def __init__(self, children: Iterable[DTreeNode],
                 domain: Optional[FrozenSet[int]] = None) -> None:
        super().__init__()
        child_list = list(children)
        if len(child_list) < 1:
            raise ValueError("inner nodes need at least one child")
        self._children = child_list
        for child in child_list:
            child.parent = self
        if domain is None:
            domain = frozenset().union(*(c.domain for c in child_list))
        # A caller-supplied domain is trusted (the compilers already hold
        # the exact domain of the function being decomposed); validate()
        # still checks the structural invariants.
        self._domain = domain

    @property
    def domain(self) -> FrozenSet[int]:
        return self._domain

    def children(self) -> List[DTreeNode]:
        return self._children

    def replace_child(self, old: DTreeNode, new: DTreeNode) -> None:
        for index, child in enumerate(self._children):
            if child is old:
                self._children[index] = new
                new.parent = self
                old.parent = None
                return
        raise ValueError("node to replace is not a child of this node")

    def clone_shallow(self, children: List[DTreeNode]) -> "_InnerNode":
        return type(self)(children)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._children)} children)"


class DecompAnd(_InnerNode):
    """Independent-AND (``⊙``): conjunction of variable-disjoint functions."""

    __slots__ = ()

    symbol = "⊙"

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        return all(c.evaluate(true_variables) for c in self._children)

    def _validate_node(self) -> None:
        _check_disjoint_domains(self)


class DecompOr(_InnerNode):
    """Independent-OR (``⊗``): disjunction of variable-disjoint functions."""

    __slots__ = ()

    symbol = "⊗"

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        return any(c.evaluate(true_variables) for c in self._children)

    def _validate_node(self) -> None:
        _check_disjoint_domains(self)


class ExclusiveOr(_InnerNode):
    """Mutually-exclusive OR (``⊕``): disjunction over the same variable set."""

    __slots__ = ()

    symbol = "⊕"

    def evaluate(self, true_variables: FrozenSet[int]) -> bool:
        return any(c.evaluate(true_variables) for c in self._children)

    def _validate_node(self) -> None:
        for child in self._children:
            if child.domain != self.domain:
                raise ValueError(
                    "children of an exclusive-or node must share the parent domain"
                )


def _check_disjoint_domains(node: _InnerNode) -> None:
    seen: set[int] = set()
    for child in node.children():
        overlap = seen & child.domain
        if overlap:
            raise ValueError(
                f"decomposable node children share variables {sorted(overlap)[:5]}"
            )
        seen |= child.domain
    if frozenset(seen) != node.domain:
        raise ValueError("decomposable node domain mismatch")


def pretty_print(node: DTreeNode, indent: int = 0) -> str:
    """Render a d-tree as an indented multi-line string (debugging helper)."""
    pad = "  " * indent
    if isinstance(node, _InnerNode):
        lines = [f"{pad}{node.symbol}"]
        for child in node.children():
            lines.append(pretty_print(child, indent + 1))
        return "\n".join(lines)
    return f"{pad}{node!r}"
