"""repro: Banzhaf values for facts in query answering.

A Python library reproducing "Banzhaf Values for Facts in Query Answering"
(SIGMOD 2024): exact (ExaBan), anytime deterministic approximate (AdaBan) and
ranking/top-k (IchiBan) computation of the Banzhaf values of database facts
in the answers of select-project-join-union queries, together with the
substrates the algorithms need (positive DNF lineage, decomposition trees, a
provenance-aware relational engine) and the baselines they are compared
against (knowledge-compilation exact computation, Monte Carlo sampling, the
CNF proxy ranking heuristic).

Typical use::

    from repro import Database, attribute_facts, parse_query

    db = Database()
    db.add_fact("R", ("a",))
    db.add_fact("S", ("a", "b"))
    db.add_fact("T", ("b",))
    query = parse_query("Q() :- R(X), S(X, Y), T(Y)")
    for result in attribute_facts(query, db):
        for attribution in result.attributions:
            print(attribution)
"""

from repro.boolean.dnf import DNF
from repro.core.adaban import AdaBanResult, adaban, adaban_all
from repro.core.attribution import (
    AttributionResult,
    FactAttribution,
    attribute_facts,
    rank_facts,
    topk_facts,
)
from repro.core.banzhaf import banzhaf_exact
from repro.core.exaban import exaban, exaban_all
from repro.core.ichiban import (
    IchiBanTimeout,
    RankedVariable,
    ichiban_rank,
    ichiban_topk,
    ichiban_topk_certain,
    ranked_from_bounds,
    ranked_from_intervals,
)
from repro.core.shapley import shapley_all, shapley_exact
from repro.db.database import Database, Fact
from repro.db.datalog import parse_query
from repro.db.lineage import lineage_of_answers, lineage_of_boolean_query
from repro.db.query import Atom, ConjunctiveQuery, QueryVariable, Selection, UnionQuery
from repro.dtree.compile import CompilationBudget, compile_dnf
from repro.engine import (
    AttributionService,
    CacheStore,
    CircuitBreaker,
    CompiledLineage,
    DiskStore,
    Engine,
    EngineConfig,
    EngineStats,
    FaultPlan,
    LogStore,
    MemoryStore,
    ResilientStore,
    RetryPolicy,
    ShardedStore,
    SupervisedPool,
    migrate_store,
    open_store,
    wrap_store,
)

__version__ = "1.0.0"

__all__ = [
    "AdaBanResult",
    "Atom",
    "AttributionResult",
    "AttributionService",
    "CacheStore",
    "CircuitBreaker",
    "CompilationBudget",
    "CompiledLineage",
    "ConjunctiveQuery",
    "DNF",
    "Database",
    "DiskStore",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "Fact",
    "FaultPlan",
    "MemoryStore",
    "FactAttribution",
    "IchiBanTimeout",
    "LogStore",
    "QueryVariable",
    "RankedVariable",
    "ResilientStore",
    "RetryPolicy",
    "Selection",
    "ShardedStore",
    "SupervisedPool",
    "UnionQuery",
    "adaban",
    "adaban_all",
    "attribute_facts",
    "banzhaf_exact",
    "compile_dnf",
    "exaban",
    "exaban_all",
    "ichiban_rank",
    "ichiban_topk",
    "ichiban_topk_certain",
    "lineage_of_answers",
    "lineage_of_boolean_query",
    "migrate_store",
    "open_store",
    "parse_query",
    "rank_facts",
    "ranked_from_bounds",
    "ranked_from_intervals",
    "shapley_all",
    "shapley_exact",
    "topk_facts",
    "wrap_store",
    "__version__",
]
