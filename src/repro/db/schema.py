"""Database schemas: relation symbols with fixed arities and named columns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple


@dataclass(frozen=True)
class RelationSymbol:
    """A relation symbol with a fixed arity and optional column names.

    Column names default to ``col0, col1, ...``; they are used only for
    display and for the small textual query syntax.
    """

    name: str
    arity: int
    columns: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError("arity must be non-negative")
        if self.columns and len(self.columns) != self.arity:
            raise ValueError(
                f"relation {self.name}: {len(self.columns)} column names for "
                f"arity {self.arity}"
            )
        if not self.columns:
            object.__setattr__(
                self, "columns", tuple(f"col{i}" for i in range(self.arity))
            )

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """A finite set of relation symbols, addressable by name."""

    def __init__(self, relations: Iterable[RelationSymbol] = ()) -> None:
        self._relations: Dict[str, RelationSymbol] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSymbol) -> RelationSymbol:
        """Add a relation symbol; adding the same symbol twice is a no-op."""
        existing = self._relations.get(relation.name)
        if existing is not None:
            if existing.arity != relation.arity:
                raise ValueError(
                    f"relation {relation.name} already declared with arity "
                    f"{existing.arity}, cannot redeclare with {relation.arity}"
                )
            return existing
        self._relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> RelationSymbol:
        """Look up a relation symbol by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def declare(self, name: str, arity: int,
                columns: Optional[Iterable[str]] = None) -> RelationSymbol:
        """Declare (or fetch) a relation symbol by name and arity."""
        symbol = RelationSymbol(name, arity,
                                tuple(columns) if columns else ())
        return self.add(symbol)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        names = ", ".join(sorted(repr(r) for r in self._relations.values()))
        return f"Schema({names})"
