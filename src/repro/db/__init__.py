"""Relational database substrate with provenance-aware query evaluation.

This package is the stand-in for the PostgreSQL + ProvSQL stack the paper
uses to produce lineage: an in-memory relational engine whose query
evaluator returns, for every answer tuple, the positive DNF lineage over the
endogenous facts (Section 2 of the paper).

* :mod:`repro.db.schema` -- relation symbols and database schemas;
* :mod:`repro.db.database` -- fact storage, endogenous/exogenous partition,
  fact <-> variable-id registry;
* :mod:`repro.db.query` -- conjunctive queries, unions of conjunctive
  queries, selection predicates, free/bound variables;
* :mod:`repro.db.hierarchy` -- hierarchical and self-join-free query checks
  (the dichotomy's tractability frontier);
* :mod:`repro.db.evaluation` -- join evaluation producing answer tuples with
  their groundings;
* :mod:`repro.db.lineage` -- lineage construction per answer tuple;
* :mod:`repro.db.reductions` -- the Lemma 23 PP2DNF -> database construction
  and the Appendix D example database;
* :mod:`repro.db.datalog` -- a small textual syntax for queries (parsing
  helper used by the examples).
"""

from repro.db.database import Database, Fact
from repro.db.evaluation import evaluate_query
from repro.db.hierarchy import is_hierarchical, is_self_join_free
from repro.db.lineage import lineage_of_answers, lineage_of_boolean_query
from repro.db.query import (
    Atom,
    ConjunctiveQuery,
    QueryVariable,
    Selection,
    UnionQuery,
)
from repro.db.schema import RelationSymbol, Schema

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Database",
    "Fact",
    "QueryVariable",
    "RelationSymbol",
    "Schema",
    "Selection",
    "UnionQuery",
    "evaluate_query",
    "is_hierarchical",
    "is_self_join_free",
    "lineage_of_answers",
    "lineage_of_boolean_query",
]
