"""Query evaluation producing answer tuples and their groundings.

The evaluator is a straightforward nested-loop/semi-naive join over the
in-memory relations.  Besides the answer tuples it returns, for every answer,
the list of *groundings*: total assignments of the query variables to
constants under which every atom is matched by a database fact.  Each
grounding corresponds to one clause of the answer's lineage (Example 6 of the
paper), so the lineage builder consumes groundings directly.

Atoms are matched against both endogenous and exogenous facts; the
distinction only matters when the lineage is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.db.database import Database, Fact
from repro.db.query import (
    Atom,
    ConjunctiveQuery,
    Query,
    QueryVariable,
    UnionQuery,
    as_union,
)

Value = object
Binding = Dict[QueryVariable, Value]


@dataclass(frozen=True)
class Grounding:
    """One way of satisfying a CQ: a variable binding plus the matched facts."""

    binding: Tuple[Tuple[str, Value], ...]
    facts: Tuple[Fact, ...]

    def as_dict(self) -> Dict[str, Value]:
        """The binding as a plain dict keyed by variable name."""
        return dict(self.binding)


@dataclass
class AnswerTuple:
    """An output tuple together with all groundings that produce it."""

    values: Tuple[Value, ...]
    groundings: List[Grounding]

    def __repr__(self) -> str:
        return f"AnswerTuple({self.values}, {len(self.groundings)} groundings)"


def _match_atom(atom: Atom, row: Sequence[Value],
                binding: Binding) -> Binding | None:
    """Try to extend ``binding`` so that ``atom`` matches ``row``."""
    if len(row) != len(atom.terms):
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, QueryVariable):
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


class _Unbound:
    """Sentinel distinct from any database value (including None)."""


_UNBOUND = _Unbound()


def _orderly_atoms(query: ConjunctiveQuery) -> List[Atom]:
    """Order atoms to bind variables early (simple greedy join order).

    Starts from the atom with the fewest variables and repeatedly picks the
    atom sharing the most variables with those already placed.
    """
    remaining = list(query.atoms)
    ordered: List[Atom] = []
    bound: set[QueryVariable] = set()
    while remaining:
        def score(candidate: Atom) -> Tuple[int, int]:
            variables = candidate.variables()
            return (len(variables & bound), -len(variables - bound))

        best = max(remaining, key=score) if ordered else min(
            remaining, key=lambda a: len(a.variables()))
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


def _selections_hold(query: ConjunctiveQuery, binding: Binding) -> bool:
    return all(
        selection.holds(binding[selection.variable])
        for selection in query.selections
        if selection.variable in binding
    )


def evaluate_cq(query: ConjunctiveQuery, database: Database) -> List[AnswerTuple]:
    """Evaluate a conjunctive query, returning answers with their groundings.

    For a Boolean query the single possible answer is the empty tuple; it is
    returned iff the query is satisfied, with all its groundings.
    """
    atoms = _orderly_atoms(query)
    answers: Dict[Tuple[Value, ...], AnswerTuple] = {}

    def recurse(index: int, binding: Binding, used: List[Fact]) -> None:
        if index == len(atoms):
            if not _selections_hold(query, binding):
                return
            key = tuple(binding[v] for v in query.head)
            answer = answers.get(key)
            if answer is None:
                answer = AnswerTuple(values=key, groundings=[])
                answers[key] = answer
            named_binding = tuple(sorted(
                (variable.name, value) for variable, value in binding.items()
            ))
            answer.groundings.append(
                Grounding(binding=named_binding, facts=tuple(used))
            )
            return
        current = atoms[index]
        for row in database.rows(current.relation):
            extended = _match_atom(current, row, binding)
            if extended is None:
                continue
            # Prune early on selections whose variable is already bound.
            if not _selections_hold(query, extended):
                continue
            fact = Fact(current.relation, tuple(row))
            recurse(index + 1, extended, used + [fact])

    recurse(0, {}, [])
    return list(answers.values())


def evaluate_query(query: Query, database: Database) -> List[AnswerTuple]:
    """Evaluate a CQ or UCQ; groundings of all disjuncts are merged per tuple."""
    union = as_union(query)
    merged: Dict[Tuple[Value, ...], AnswerTuple] = {}
    for disjunct in union.disjuncts:
        for answer in evaluate_cq(disjunct, database):
            existing = merged.get(answer.values)
            if existing is None:
                merged[answer.values] = answer
            else:
                existing.groundings.extend(answer.groundings)
    return list(merged.values())


def boolean_query_holds(query: Query, database: Database) -> bool:
    """``True`` iff a Boolean query is satisfied by the database."""
    union = as_union(query)
    if not union.is_boolean():
        raise ValueError("boolean_query_holds expects a Boolean query")
    return bool(evaluate_query(union, database))
