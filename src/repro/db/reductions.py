"""Hardness-reduction databases and the Appendix D example.

Two constructions from the paper are materialized here so that the theory
sections can be exercised as running code:

* **Lemma 23**: from any PP2DNF function ``phi`` build a database ``D`` such
  that the lineage of the basic non-hierarchical query
  ``Q_nh = exists X, Y. R(X), S(X, Y), T(Y)`` over ``D`` is exactly ``phi``
  (``R`` and ``T`` facts endogenous, ``S`` facts exogenous).
* **Appendix D**: the 18-fact database over ``R(X), S(X, Y), T(X, Z)`` on
  which the Banzhaf-based and Shapley-based rankings of ``R(a1)`` and
  ``R(a2)`` disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.boolean.pp2dnf import PP2DNF
from repro.db.database import Database, Fact
from repro.db.query import Atom, ConjunctiveQuery, QueryVariable


def basic_non_hierarchical_query() -> ConjunctiveQuery:
    """The query ``Q_nh = exists X, Y. R(X), S(X, Y), T(Y)`` (Eq. 12)."""
    x, y = QueryVariable("X"), QueryVariable("Y")
    return ConjunctiveQuery(
        atoms=(Atom("R", (x,)), Atom("S", (x, y)), Atom("T", (y,))),
        head=(),
        name="Q_nh",
    )


@dataclass(frozen=True)
class Lemma23Database:
    """The Lemma 23 construction: database plus fact <-> PP2DNF-variable maps."""

    database: Database
    query: ConjunctiveQuery
    fact_of_variable: Dict[int, Fact]
    lineage_variable_of: Dict[int, int]


def pp2dnf_to_database(function: PP2DNF) -> Lemma23Database:
    """Build the Lemma 23 database for a PP2DNF function.

    Left-part variables become endogenous ``R`` facts, right-part variables
    become endogenous ``T`` facts, and each clause becomes an exogenous ``S``
    fact.  ``lineage_variable_of`` maps each PP2DNF variable to the lineage
    variable id of its fact, so Banzhaf values computed on the lineage can be
    read back in terms of the original function.
    """
    database = Database()
    fact_of_variable: Dict[int, Fact] = {}
    lineage_variable_of: Dict[int, int] = {}
    for variable in sorted(function.left):
        fact = database.add_fact("R", (f"a{variable}",), endogenous=True)
        fact_of_variable[variable] = fact
        lineage_variable_of[variable] = database.variable_of(fact)
    for variable in sorted(function.right):
        fact = database.add_fact("T", (f"a{variable}",), endogenous=True)
        fact_of_variable[variable] = fact
        lineage_variable_of[variable] = database.variable_of(fact)
    for left_variable, right_variable in sorted(function.clauses):
        database.add_fact("S", (f"a{left_variable}", f"a{right_variable}"),
                          endogenous=False)
    return Lemma23Database(
        database=database,
        query=basic_non_hierarchical_query(),
        fact_of_variable=fact_of_variable,
        lineage_variable_of=lineage_variable_of,
    )


def appendix_d_query() -> ConjunctiveQuery:
    """The query ``Q = exists X, Y, Z. R(X), S(X, Y), T(X, Z)`` of Appendix D."""
    x, y, z = QueryVariable("X"), QueryVariable("Y"), QueryVariable("Z")
    return ConjunctiveQuery(
        atoms=(Atom("R", (x,)), Atom("S", (x, y)), Atom("T", (x, z))),
        head=(),
        name="Q_appendix_d",
    )


def appendix_d_database() -> Tuple[Database, Fact, Fact]:
    """The 18-fact database of Appendix D.

    Returns the database together with the two facts ``R(a1)`` and ``R(a2)``
    whose Banzhaf ranking (``R(a1)`` above ``R(a2)``) differs from their
    Shapley ranking (``R(a2)`` above ``R(a1)``).  All facts are endogenous.
    """
    database = Database()
    r_a1 = database.add_fact("R", ("a1",))
    r_a2 = database.add_fact("R", ("a2",))
    for i in range(1, 4):
        database.add_fact("S", ("a1", f"b{i}"))
    for i in range(1, 3):
        database.add_fact("S", ("a2", f"b{i}"))
    for i in range(1, 4):
        database.add_fact("T", ("a1", f"b{i}"))
    for i in range(1, 9):
        database.add_fact("T", ("a2", f"b{i}"))
    return database, r_a1, r_a2
