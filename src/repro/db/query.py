"""Conjunctive queries, unions of conjunctive queries, and selections.

A conjunctive query (CQ) has the form ``Q = exists Y. R1(Y1) & ... & Rm(Ym)``
where each ``Yj`` mixes query variables and constants; the variables not
existentially quantified are the free (output) variables.  A union of
conjunctive queries (UCQ) is a disjunction of CQs with the same free
variables.  Selections of the form ``X theta const`` are supported so that
the SPJU fragment of SQL used in the paper's experiments can be expressed.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

Value = object


@dataclass(frozen=True)
class QueryVariable:
    """A query variable (upper-case by convention, e.g. ``X``)."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = Union[QueryVariable, Value]


def var(name: str) -> QueryVariable:
    """Shorthand constructor for a query variable."""
    return QueryVariable(name)


_COMPARATORS: Dict[str, Callable[[Value, Value], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Selection:
    """A selection predicate ``X theta const`` on a query variable."""

    variable: QueryVariable
    comparator: str
    constant: Value

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(f"unsupported comparator {self.comparator!r}")

    def holds(self, value: Value) -> bool:
        """Evaluate the predicate on a candidate value."""
        return _COMPARATORS[self.comparator](value, self.constant)

    def __repr__(self) -> str:
        return f"{self.variable} {self.comparator} {self.constant!r}"


@dataclass(frozen=True)
class Atom:
    """An atom ``R(t1, ..., tk)`` whose terms are variables or constants."""

    relation: str
    terms: Tuple[Term, ...]

    def variables(self) -> FrozenSet[QueryVariable]:
        """The query variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, QueryVariable))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


def atom(relation: str, *terms: Term) -> Atom:
    """Shorthand constructor for an atom."""
    return Atom(relation, tuple(terms))


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with optional free (output) variables and selections.

    ``head`` lists the free variables in output order; a Boolean query has an
    empty head.  Every head variable must occur in some atom.
    """

    atoms: Tuple[Atom, ...]
    head: Tuple[QueryVariable, ...] = ()
    selections: Tuple[Selection, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        body_variables = self.variables()
        for head_variable in self.head:
            if head_variable not in body_variables:
                raise ValueError(
                    f"head variable {head_variable} does not occur in the body"
                )
        for selection in self.selections:
            if selection.variable not in body_variables:
                raise ValueError(
                    f"selection on {selection.variable} which does not occur "
                    "in the body"
                )

    def variables(self) -> FrozenSet[QueryVariable]:
        """All query variables occurring in the body."""
        result: set[QueryVariable] = set()
        for body_atom in self.atoms:
            result |= body_atom.variables()
        return frozenset(result)

    def free_variables(self) -> FrozenSet[QueryVariable]:
        """The free (output) variables."""
        return frozenset(self.head)

    def bound_variables(self) -> FrozenSet[QueryVariable]:
        """The existentially quantified variables."""
        return self.variables() - self.free_variables()

    def is_boolean(self) -> bool:
        """``True`` iff the query has no free variables."""
        return not self.head

    def atoms_with(self, variable: QueryVariable) -> Tuple[Atom, ...]:
        """The atoms containing ``variable`` (the ``at(X)`` of the paper)."""
        return tuple(a for a in self.atoms if variable in a.variables())

    def relation_names(self) -> List[str]:
        """Relation names used in the body (with repetitions for self-joins)."""
        return [a.relation for a in self.atoms]

    def residual(self, values: Sequence[Value]) -> "ConjunctiveQuery":
        """The Boolean residual query with the head variables bound to ``values``.

        This is the ``Q[t/Z]`` of the paper: each free variable is replaced by
        the corresponding constant and the head becomes empty.
        """
        if len(values) != len(self.head):
            raise ValueError(
                f"expected {len(self.head)} values for the head, got {len(values)}"
            )
        substitution = dict(zip(self.head, values))
        new_atoms = []
        for body_atom in self.atoms:
            new_terms = tuple(
                substitution.get(t, t) if isinstance(t, QueryVariable) else t
                for t in body_atom.terms
            )
            new_atoms.append(Atom(body_atom.relation, new_terms))
        for selection in self.selections:
            if selection.variable in substitution and not selection.holds(
                    substitution[selection.variable]):
                raise ValueError(
                    f"head values {tuple(values)} violate selection {selection}; "
                    "the residual query is unsatisfiable"
                )
        new_selections = tuple(
            s for s in self.selections if s.variable not in substitution
        )
        return ConjunctiveQuery(tuple(new_atoms), head=(),
                                selections=new_selections,
                                name=self.name)

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head)
        body = ", ".join(repr(a) for a in self.atoms)
        sel = (" | " + ", ".join(repr(s) for s in self.selections)
               if self.selections else "")
        return f"Q({head}) :- {body}{sel}"


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries with identical head arity."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a union query needs at least one disjunct")
        arities = {len(q.head) for q in self.disjuncts}
        if len(arities) != 1:
            raise ValueError("all disjuncts must have the same head arity")

    def head_arity(self) -> int:
        """Arity of the output tuples."""
        return len(self.disjuncts[0].head)

    def is_boolean(self) -> bool:
        """``True`` iff the query has no free variables."""
        return self.head_arity() == 0

    def __repr__(self) -> str:
        return " UNION ".join(repr(q) for q in self.disjuncts)


Query = Union[ConjunctiveQuery, UnionQuery]


def as_union(query: Query) -> UnionQuery:
    """View any query as a UCQ."""
    if isinstance(query, UnionQuery):
        return query
    return UnionQuery((query,), name=query.name)
