"""Lineage construction (the ProvSQL substitute).

The lineage of a Boolean UCQ over a database is a positive DNF over the
variables of the endogenous facts: each grounding of a disjunct contributes
one clause, namely the conjunction of the variables of the endogenous facts
it uses (exogenous facts contribute the constant 1 and simply disappear from
the clause); see Section 2 and Example 6 of the paper.

For a non-Boolean query the lineage is computed per answer tuple: each output
tuple defines a Boolean residual query whose lineage is built from exactly
the groundings that produced the tuple.

The variable domain of each lineage is, by default, exactly the variables
occurring in it.  ``domain="database"`` widens the domain to all endogenous
facts of the database, which matches the definition of the Banzhaf value as a
count of subsets of ``D_n \\ {f}``; the two conventions give Banzhaf values
that differ by the factor ``2^(#unused facts)`` and identical rankings, and
the experiment harness consistently uses the per-lineage domain (as the
paper's prototype does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Sequence, Tuple

from repro.boolean.dnf import DNF
from repro.db.database import Database, Fact
from repro.db.evaluation import AnswerTuple, evaluate_query
from repro.db.query import Query, as_union

Value = object
DomainPolicy = Literal["lineage", "database"]


@dataclass(frozen=True)
class AnswerLineage:
    """An answer tuple together with its lineage DNF."""

    values: Tuple[Value, ...]
    lineage: DNF

    def __repr__(self) -> str:
        return (f"AnswerLineage({self.values}, vars={len(self.lineage.variables)}, "
                f"clauses={self.lineage.num_clauses()})")


class EmptyLineageError(Exception):
    """Raised when a query answer has no endogenous support.

    This happens when every grounding of the answer uses only exogenous
    facts: the answer is unconditionally true and no fact attribution is
    meaningful for it.
    """


def _clause_of_grounding(facts: Sequence[Fact], database: Database
                         ) -> Tuple[int, ...] | None:
    """The clause (variable ids) of one grounding; ``None`` if purely exogenous."""
    variables = []
    for fact in facts:
        if database.is_endogenous(fact):
            variables.append(database.variable_of(fact))
    if not variables:
        return None
    return tuple(sorted(set(variables)))


def _lineage_from_answers(answer: AnswerTuple, database: Database,
                          domain: DomainPolicy) -> DNF:
    clauses: List[Tuple[int, ...]] = []
    purely_exogenous = False
    for grounding in answer.groundings:
        clause = _clause_of_grounding(grounding.facts, database)
        if clause is None:
            purely_exogenous = True
        else:
            clauses.append(clause)
    if purely_exogenous:
        raise EmptyLineageError(
            f"answer {answer.values} is supported by exogenous facts only"
        )
    if not clauses:
        raise EmptyLineageError(f"answer {answer.values} has no groundings")
    if domain == "database":
        return DNF(clauses, domain=database.endogenous_variables())
    return DNF(clauses)


def lineage_of_answers(query: Query, database: Database,
                       domain: DomainPolicy = "lineage"
                       ) -> List[AnswerLineage]:
    """Evaluate ``query`` and return each answer tuple with its lineage.

    Answers whose lineage would be trivially true (purely exogenous support)
    are skipped; Boolean queries that are not satisfied return an empty list.
    """
    results: List[AnswerLineage] = []
    for answer in evaluate_query(query, database):
        try:
            lineage = _lineage_from_answers(answer, database, domain)
        except EmptyLineageError:
            continue
        results.append(AnswerLineage(values=answer.values, lineage=lineage))
    results.sort(key=lambda entry: tuple(repr(v) for v in entry.values))
    return results


def lineage_of_boolean_query(query: Query, database: Database,
                             domain: DomainPolicy = "lineage") -> DNF:
    """The lineage of a Boolean query (Example 6 of the paper).

    Raises ``ValueError`` if the query is not Boolean and
    :class:`EmptyLineageError` if the query is unsatisfied or only
    exogenously supported.
    """
    union = as_union(query)
    if not union.is_boolean():
        raise ValueError("lineage_of_boolean_query expects a Boolean query")
    answers = evaluate_query(union, database)
    if not answers:
        raise EmptyLineageError("the Boolean query is not satisfied")
    return _lineage_from_answers(answers[0], database, domain)


def lineage_statistics(lineages: Sequence[AnswerLineage]) -> Dict[str, float]:
    """Aggregate #variables / #clauses statistics (the shape of Table 1)."""
    if not lineages:
        return {"count": 0, "avg_vars": 0.0, "max_vars": 0,
                "avg_clauses": 0.0, "max_clauses": 0}
    var_counts = [len(entry.lineage.variables) for entry in lineages]
    clause_counts = [entry.lineage.num_clauses() for entry in lineages]
    return {
        "count": len(lineages),
        "avg_vars": sum(var_counts) / len(var_counts),
        "max_vars": max(var_counts),
        "avg_clauses": sum(clause_counts) / len(clause_counts),
        "max_clauses": max(clause_counts),
    }
