"""Hierarchical and self-join-free query checks.

The paper's dichotomy (Theorem 17) separates Boolean, self-join-free
conjunctive queries into hierarchical (tractable ranking, tractable exact
Banzhaf) and non-hierarchical (intractable) queries.  A CQ is *hierarchical*
when for any two variables ``X`` and ``Y`` the atom sets ``at(X)`` and
``at(Y)`` are nested or disjoint; it is *self-join free* when no relation
symbol appears in two atoms.

For non-Boolean queries the property that determines tractability of the
residual Boolean queries is hierarchy over the *existential* variables only,
so both variants are provided.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.db.query import ConjunctiveQuery, QueryVariable, UnionQuery


def is_self_join_free(query: ConjunctiveQuery) -> bool:
    """``True`` iff no relation symbol occurs in two different atoms."""
    names = query.relation_names()
    return len(names) == len(set(names))


def _nested_or_disjoint(query: ConjunctiveQuery,
                        variables: Iterable[QueryVariable]) -> bool:
    atom_sets = {
        variable: frozenset(query.atoms_with(variable))
        for variable in variables
    }
    for left, right in combinations(atom_sets.values(), 2):
        if left & right and not (left <= right or right <= left):
            return False
    return True


def is_hierarchical(query: ConjunctiveQuery,
                    existential_only: bool = False) -> bool:
    """``True`` iff the query is hierarchical.

    With ``existential_only=True`` only the bound (existential) variables are
    considered, which is the relevant notion for non-Boolean queries: each
    answer tuple fixes the free variables to constants, so only the
    quantified variables influence the structure of the residual lineage.
    """
    variables = (query.bound_variables() if existential_only
                 else query.variables())
    return _nested_or_disjoint(query, variables)


def is_hierarchical_ucq(query: UnionQuery, existential_only: bool = False) -> bool:
    """``True`` iff every disjunct of the UCQ is hierarchical."""
    return all(is_hierarchical(q, existential_only=existential_only)
               for q in query.disjuncts)


def classify_query(query: ConjunctiveQuery) -> str:
    """Human-readable classification used in reports and examples.

    Returns one of ``"hierarchical"``, ``"non-hierarchical"`` or
    ``"has-self-joins"`` (the dichotomy only speaks about self-join-free
    queries, so self-joins are flagged separately).
    """
    if not is_self_join_free(query):
        return "has-self-joins"
    if is_hierarchical(query, existential_only=not query.is_boolean()):
        return "hierarchical"
    return "non-hierarchical"
