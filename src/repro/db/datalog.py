"""A small textual (Datalog-style) query syntax.

Queries in the examples and workload definitions can be written as strings
such as::

    Answer(X) :- Movie(M, X, Y), Directed(D, M), Person(D, 'Lynch'), Y >= 1990

The grammar is intentionally tiny:

* the head is ``Name(V1, ..., Vk)`` with distinct variables (or ``Name()``
  for a Boolean query);
* the body is a comma-separated list of atoms ``Rel(t1, ..., tk)`` and
  selections ``Var op const``;
* terms starting with an upper-case letter are variables, quoted strings and
  numbers are constants;
* ``;`` separates disjuncts of a union query (all with the same head).
"""

from __future__ import annotations

import re
from typing import List, Tuple, Union

from repro.db.query import (
    Atom,
    ConjunctiveQuery,
    QueryVariable,
    Selection,
    UnionQuery,
)

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(([^)]*)\)\s*")
_SELECTION_RE = re.compile(
    r"\s*([A-Z][A-Za-z_0-9]*)\s*(<=|>=|!=|<>|==|=|<|>)\s*(.+?)\s*$"
)


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def _parse_term(text: str) -> Union[QueryVariable, object]:
    token = text.strip()
    if not token:
        raise QueryParseError("empty term")
    if token[0] in "'\"":
        if len(token) < 2 or token[-1] != token[0]:
            raise QueryParseError(f"unterminated string constant {token!r}")
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?\d+\.\d+", token):
        return float(token)
    if token[0].isupper():
        return QueryVariable(token)
    # Bare lower-case identifiers are treated as string constants.
    return token


def _parse_constant(text: str) -> object:
    value = _parse_term(text)
    if isinstance(value, QueryVariable):
        raise QueryParseError(
            f"expected a constant on the right-hand side of a selection, got "
            f"variable {value}"
        )
    return value


def _split_body(body: str) -> List[str]:
    """Split the body on commas that are not inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError("unbalanced parentheses in query body")
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryParseError("unbalanced parentheses in query body")
    parts.append("".join(current))
    return [part for part in parts if part.strip()]


def _parse_head(head: str) -> Tuple[str, Tuple[QueryVariable, ...]]:
    match = _ATOM_RE.fullmatch(head)
    if not match:
        raise QueryParseError(f"cannot parse query head {head!r}")
    name, inner = match.group(1), match.group(2).strip()
    if not inner:
        return name, ()
    variables = []
    for part in inner.split(","):
        term = _parse_term(part)
        if not isinstance(term, QueryVariable):
            raise QueryParseError("head terms must be variables")
        variables.append(term)
    return name, tuple(variables)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a single conjunctive query (one rule)."""
    if ":-" not in text:
        raise QueryParseError("a query needs a ':-' separating head and body")
    head_text, body_text = text.split(":-", 1)
    name, head = _parse_head(head_text)
    atoms: List[Atom] = []
    selections: List[Selection] = []
    for part in _split_body(body_text):
        atom_match = _ATOM_RE.fullmatch(part)
        if atom_match:
            relation, inner = atom_match.group(1), atom_match.group(2)
            terms = tuple(_parse_term(t) for t in inner.split(",")) if inner.strip() else ()
            atoms.append(Atom(relation, terms))
            continue
        selection_match = _SELECTION_RE.fullmatch(part)
        if selection_match:
            variable, comparator, constant = selection_match.groups()
            comparator = "!=" if comparator == "<>" else comparator
            selections.append(Selection(QueryVariable(variable), comparator,
                                        _parse_constant(constant)))
            continue
        raise QueryParseError(f"cannot parse body element {part.strip()!r}")
    if not atoms:
        raise QueryParseError("the query body contains no atoms")
    return ConjunctiveQuery(tuple(atoms), head=head,
                            selections=tuple(selections), name=name)


def parse_query(text: str) -> Union[ConjunctiveQuery, UnionQuery]:
    """Parse a query; ``;`` separates the disjuncts of a union."""
    rules = [part for part in text.split(";") if part.strip()]
    if not rules:
        raise QueryParseError("empty query string")
    queries = [parse_cq(rule) for rule in rules]
    if len(queries) == 1:
        return queries[0]
    return UnionQuery(tuple(queries), name=queries[0].name)
