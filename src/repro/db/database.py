"""Fact storage with an endogenous/exogenous partition and variable registry.

A database is a set of facts over a schema.  Following the paper (and the
standard setup for fact attribution), the facts are partitioned into
*endogenous* facts -- whose contribution we want to quantify, and which carry
a propositional variable ``v(f)`` -- and *exogenous* facts, which are taken
for granted and contribute the constant 1 to the lineage.

The :class:`Database` also acts as the registry mapping endogenous facts to
consecutive integer variable ids (the variables of the lineage DNF) and back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.db.schema import RelationSymbol, Schema

Value = object


@dataclass(frozen=True)
class Fact:
    """A fact ``R(c1, ..., ck)``: a relation name plus a tuple of constants."""

    relation: str
    values: Tuple[Value, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"

    def arity(self) -> int:
        """Number of values in the fact."""
        return len(self.values)


class Database:
    """An in-memory database with endogenous/exogenous facts.

    Parameters
    ----------
    schema:
        Optional schema; relations are declared on the fly when facts are
        added if no schema is given or the relation is missing.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema if schema is not None else Schema()
        self._rows: Dict[str, List[Tuple[Value, ...]]] = {}
        self._endogenous: Dict[Fact, int] = {}
        self._exogenous: set[Fact] = set()
        self._by_variable: Dict[int, Fact] = {}
        self._next_variable = 0

    # ------------------------------------------------------------------ #
    # Fact insertion
    # ------------------------------------------------------------------ #

    def add_fact(self, relation: str, values: Sequence[Value],
                 endogenous: bool = True) -> Fact:
        """Insert a fact; returns the (possibly pre-existing) fact object.

        Inserting the same fact twice is idempotent; a fact cannot be both
        endogenous and exogenous.
        """
        fact = Fact(relation, tuple(values))
        if relation not in self.schema:
            self.schema.declare(relation, len(fact.values))
        else:
            expected = self.schema.relation(relation).arity
            if expected != fact.arity():
                raise ValueError(
                    f"fact {fact} has arity {fact.arity()}, relation declared "
                    f"with arity {expected}"
                )
        already_endogenous = fact in self._endogenous
        already_exogenous = fact in self._exogenous
        if already_endogenous or already_exogenous:
            if endogenous != already_endogenous:
                raise ValueError(
                    f"fact {fact} already present with a different "
                    "endogenous/exogenous status"
                )
            return fact
        self._rows.setdefault(relation, []).append(fact.values)
        if endogenous:
            variable = self._next_variable
            self._next_variable += 1
            self._endogenous[fact] = variable
            self._by_variable[variable] = fact
        else:
            self._exogenous.add(fact)
        return fact

    def add_facts(self, relation: str, rows: Iterable[Sequence[Value]],
                  endogenous: bool = True) -> List[Fact]:
        """Insert several facts of the same relation."""
        return [self.add_fact(relation, row, endogenous=endogenous)
                for row in rows]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def rows(self, relation: str) -> Sequence[Tuple[Value, ...]]:
        """All rows of a relation (empty if the relation has no facts)."""
        return tuple(self._rows.get(relation, ()))

    def relations(self) -> List[str]:
        """Names of relations with at least one fact."""
        return sorted(self._rows)

    def contains_fact(self, relation: str, values: Sequence[Value]) -> bool:
        """``True`` iff the database contains the fact."""
        fact = Fact(relation, tuple(values))
        return fact in self._endogenous or fact in self._exogenous

    def is_endogenous(self, fact: Fact) -> bool:
        """``True`` iff the fact is endogenous."""
        return fact in self._endogenous

    def is_exogenous(self, fact: Fact) -> bool:
        """``True`` iff the fact is exogenous."""
        return fact in self._exogenous

    def variable_of(self, fact: Fact) -> int:
        """The lineage variable id ``v(f)`` of an endogenous fact."""
        try:
            return self._endogenous[fact]
        except KeyError:
            raise KeyError(f"{fact} is not an endogenous fact") from None

    def fact_of(self, variable: int) -> Fact:
        """The endogenous fact associated with a lineage variable id."""
        try:
            return self._by_variable[variable]
        except KeyError:
            raise KeyError(f"no endogenous fact with variable id {variable}") from None

    def endogenous_facts(self) -> List[Fact]:
        """All endogenous facts, in insertion order of their variable ids."""
        return [self._by_variable[v] for v in sorted(self._by_variable)]

    def exogenous_facts(self) -> List[Fact]:
        """All exogenous facts."""
        return sorted(self._exogenous, key=repr)

    def endogenous_variables(self) -> List[int]:
        """All lineage variable ids."""
        return sorted(self._by_variable)

    def num_facts(self) -> int:
        """Total number of facts."""
        return len(self._endogenous) + len(self._exogenous)

    def __iter__(self) -> Iterator[Fact]:
        yield from self._endogenous
        yield from self._exogenous

    def __len__(self) -> int:
        return self.num_facts()

    def __repr__(self) -> str:
        return (f"Database({len(self._endogenous)} endogenous, "
                f"{len(self._exogenous)} exogenous facts, "
                f"{len(self._rows)} relations)")
