"""Appendix D: the Banzhaf vs Shapley ranking divergence table."""

from conftest import register_report

from repro.experiments.report import render_mapping_table, render_table
from repro.experiments.tables import appendix_d_rows


def test_appendix_d_divergence(benchmark):
    rows, summary = benchmark(appendix_d_rows)
    register_report("appendix_d_critical_sets", render_mapping_table(
        rows, ["k", "critical_R_a1", "critical_R_a2"],
        title="Appendix D: number of critical sets of size k"))
    register_report("appendix_d_summary", render_table(
        ["measure", "R(a1)", "R(a2)", "prefers"],
        [["Banzhaf", summary["banzhaf_R_a1"], summary["banzhaf_R_a2"],
          summary["banzhaf_prefers"]],
         ["Shapley", summary["shapley_R_a1"], summary["shapley_R_a2"],
          summary["shapley_prefers"]]],
        title="Appendix D: Banzhaf vs Shapley ranking"))

    # The exact values of the paper's Appendix D table.
    assert summary["banzhaf_R_a1"] == 62_867
    assert summary["banzhaf_R_a2"] == 60_435
    assert summary["banzhaf_prefers"] == "R(a1)"
    assert summary["shapley_prefers"] == "R(a2)"
