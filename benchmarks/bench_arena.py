"""Arena benchmark: struct-of-arrays d-tree passes + the float ranking tier.

This PR flattened compiled d-trees into a postorder-contiguous
struct-of-arrays arena (:mod:`repro.dtree.arena`), so the fused
count/Banzhaf evaluation walks parallel integer columns with index loops
instead of chasing ``DTreeNode`` object pointers.  This benchmark proves
the two headline claims on real workload trees:

* **fused passes** -- one cold count+Banzhaf evaluation per tree: the
  arena path (build columns, bottom-up counts, fused top-down Banzhaf)
  against the PR-5 object-graph baseline
  (:func:`repro.core.exaban.exaban_all_objects`), kept alive exactly for
  this differential.  Asserts bit-identical integer results and a >= 2x
  wall-clock win;
* **hard_wide completion** -- the ``hard_wide`` instances whose exact
  compilation is intractable: the exact ranking tier runs its anytime
  refinement under an explicit ``timeout_seconds`` budget and times out
  unconverged, while the float tier (``numeric="float"``) degrades to the
  order-only surrogate ranking off the partial tree and returns a full
  ranking over every occurring variable inside the same budget.  Reports
  attempted/completed per tier plus instances/sec.

Environment knobs: ``REPRO_BENCH_TIMEOUT`` (per-instance hard_wide budget
in seconds, default 1.5) and ``REPRO_BENCH_SMOKE=1`` for the CI smoke
configuration (1 timing round).

Runs standalone (``python benchmarks/bench_arena.py``) or under pytest
with the rest of the benchmark harness.  Emits ``BENCH_arena.json``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from conftest import emit_bench_json, register_report

from repro.boolean.dnf import DNF
from repro.core.exaban import exaban_all_objects
from repro.dtree.arena import DTreeArena, arena_banzhaf, arena_counts
from repro.dtree.compile import compile_dnf
from repro.engine.ranking import compute_ranking
from repro.workloads.suite import default_workloads, hard_instances

#: Wall-clock budget for each (intractable) hard_wide ranking attempt.
HARD_WIDE_TIMEOUT_SECONDS = float(os.environ.get("REPRO_BENCH_TIMEOUT", "1.5"))

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _workload_trees() -> List[Tuple[DNF, object, DTreeArena]]:
    """Every PR-1 workload lineage, compiled + arena-built once.

    The arena is flattened outside the timed loops because that is how
    the engine pays for it: :func:`~repro.dtree.arena.arena_of` builds
    the columns once per compiled tree and caches them on its root, then
    every later evaluation -- count, Banzhaf, Shapley, bounds, float --
    walks the same columns.  The timed region below is the *per
    evaluation* cost, with the arena's memoized pass results cleared so
    each repetition recomputes from the raw columns.
    """
    workloads = default_workloads(include_hard=False)
    lineages = [instance.lineage
                for workload in workloads for instance in workload.instances]
    trees = []
    for lineage in lineages:
        root = compile_dnf(lineage)
        trees.append((lineage, root, DTreeArena.from_tree(root)))
    return trees


def _arena_pass(trees) -> Tuple[list, float]:
    """Cold count+Banzhaf per tree through the prebuilt arena columns."""
    for _, _, arena in trees:
        arena.results.clear()
        arena.payloads.clear()
    results = []
    started = time.monotonic()
    for _, _, arena in trees:
        counts = arena_counts(arena)
        banzhaf = arena_banzhaf(arena)
        results.append((counts[arena.root], banzhaf))
    return results, time.monotonic() - started


def _object_pass(trees) -> Tuple[list, float]:
    """The same traffic through the PR-5 object-graph fused pass."""
    results = []
    started = time.monotonic()
    for _, root, _ in trees:
        counts: Dict[int, int] = {}
        banzhaf = exaban_all_objects(root, counts=counts)
        results.append((counts[id(root)], banzhaf))
    return results, time.monotonic() - started


def _hard_wide_tiers() -> Tuple[Dict[str, float], List[str]]:
    """Exact vs float ranking tier on the ``hard_wide`` instances.

    Each attempt gets the same explicit per-instance budget
    (``timeout_seconds=HARD_WIDE_TIMEOUT_SECONDS``), so CI can never hang
    on these intractable instances.  ``completed`` means the tier handed
    back a usable ranking: converged for the exact tier, a full ranking
    over every occurring variable for the float tier (whose surrogate
    path is built to always finish inside the compile budget).
    """
    wide = [instance for instance in hard_instances(default_workloads())
            if "wide" in instance.tags]
    ops: Dict[str, float] = {}
    lines: List[str] = []

    exact_completed = float_completed = 0
    float_beats_exact = 0
    exact_seconds = float_seconds = 0.0
    for instance in wide:
        lineage = instance.lineage
        started = time.monotonic()
        exact = compute_ranking(lineage, "rank", None, None,
                                HARD_WIDE_TIMEOUT_SECONDS)
        exact_seconds += time.monotonic() - started
        exact_ok = exact.outcome.converged

        started = time.monotonic()
        floated = compute_ranking(lineage, "rank", None, None,
                                  HARD_WIDE_TIMEOUT_SECONDS,
                                  numeric="float")
        float_seconds += time.monotonic() - started
        float_ok = (set(floated.outcome.values) == set(lineage.variables)
                    and len(floated.outcome.values) > 0)

        exact_completed += exact_ok
        float_completed += float_ok
        float_beats_exact += float_ok and not exact_ok
        lines.append(
            f"  {len(lineage.variables):>3}-var wide: exact "
            f"{'converged' if exact_ok else 'timed out'} "
            f"({exact.outcome.method_used}), float "
            f"{'ranked all' if float_ok else 'incomplete'} "
            f"({floated.outcome.method_used})"
        )

    attempted = len(wide)
    ops["hard_wide.rank.timeout_seconds"] = HARD_WIDE_TIMEOUT_SECONDS
    ops["hard_wide.rank.attempted"] = attempted
    ops["hard_wide.rank.completed.exact"] = exact_completed
    ops["hard_wide.rank.completed.float"] = float_completed
    if exact_seconds > 0:
        ops["hard_wide.rank.instances_per_sec.exact"] = round(
            attempted / exact_seconds, 2)
    if float_seconds > 0:
        ops["hard_wide.rank.instances_per_sec.float"] = round(
            attempted / float_seconds, 2)
    lines.append(
        f"  attempted {attempted} per tier "
        f"(timeout_seconds={HARD_WIDE_TIMEOUT_SECONDS}): exact completed "
        f"{exact_completed}, float completed {float_completed}"
    )

    assert float_beats_exact >= 1, (
        "expected the float tier to complete at least one hard_wide "
        "ranking instance the exact tier times out on"
    )
    budget = attempted * 2 * (HARD_WIDE_TIMEOUT_SECONDS + 2.0)
    assert exact_seconds + float_seconds <= budget, (
        "budgeted hard_wide ranking attempts overran their timeout budget"
    )
    return ops, lines


def run_benchmark(rounds: int = 5) -> str:
    if _SMOKE:
        rounds = 2
    trees = _workload_trees()

    arena_seconds = object_seconds = float("inf")
    for _ in range(max(1, rounds)):
        arena_values, arena_elapsed = _arena_pass(trees)
        object_values, object_elapsed = _object_pass(trees)
        # Bit-identical: exact integer model counts and Banzhaf values,
        # variable by variable, tree by tree.
        assert arena_values == object_values, (
            "arena fused pass diverged from the object-graph baseline"
        )
        arena_seconds = min(arena_seconds, arena_elapsed)
        object_seconds = min(object_seconds, object_elapsed)

    speedup = object_seconds / arena_seconds
    assert speedup >= 2.0, (
        f"expected >= 2x fused count+Banzhaf speedup over the object-graph "
        f"pass, measured {speedup:.2f}x "
        f"({arena_seconds * 1000:.0f}ms vs {object_seconds * 1000:.0f}ms)"
    )

    ops, hard_lines = _hard_wide_tiers()
    ops["fused_pass.trees_per_sec.arena"] = round(
        len(trees) / arena_seconds, 1)
    ops["fused_pass.trees_per_sec.objects"] = round(
        len(trees) / object_seconds, 1)

    workload_label = ("pr1-attribution trees: academic+imdb+tpch, cold "
                      "count+banzhaf per tree, arena columns vs object graph")
    emit_bench_json(
        "arena",
        workload=workload_label,
        speedup=round(speedup, 3),
        ops_per_sec=ops,
        metrics={
            "trees": len(trees),
            "arena_ms": round(arena_seconds * 1000, 1),
            "objects_ms": round(object_seconds * 1000, 1),
            "rounds": max(1, rounds),
            "hard_wide_timeout_seconds": HARD_WIDE_TIMEOUT_SECONDS,
        },
    )

    lines = [
        f"workload:            {workload_label}",
        f"trees:               {len(trees)} (compiled once, passes cold)",
        f"arena fused pass:    {arena_seconds * 1000:8.1f} ms "
        f"({len(trees) / arena_seconds:.0f} trees/s)",
        f"object fused pass:   {object_seconds * 1000:8.1f} ms",
        f"speedup:             {speedup:.2f}x (assert >= 2.0x, bit-identical "
        f"counts + Banzhaf ints)",
        "hard_wide ranking tiers (exact anytime vs float surrogate):",
        *hard_lines,
    ]
    return "\n".join(lines)


def test_arena_speedup():
    report = run_benchmark()
    register_report("arena_speedup", report)


if __name__ == "__main__":
    print(run_benchmark())
