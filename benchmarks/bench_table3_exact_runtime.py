"""Table 3: runtime of ExaBan vs Sig22 on instances where Sig22 succeeds."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table3_exact_runtime

_COLUMNS = ["dataset", "algorithm", "instances", "mean", "p50", "p75", "p90",
            "p95", "p99", "max"]


def test_table3_exact_runtime(benchmark, workload_results):
    rows = benchmark(table3_exact_runtime, workload_results)
    register_report("table3_exact_runtime",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 3: exact computation "
                                               "runtime (Sig22 successes)"))
    by_key = {(row["dataset"], row["algorithm"]): row for row in rows}
    for dataset in ("academic", "imdb", "tpch"):
        exaban = by_key[(dataset, "exaban")]
        sig22 = by_key[(dataset, "sig22")]
        assert exaban["instances"] == sig22["instances"] > 0
        # The paper's claim: ExaBan outperforms Sig22 on the common instances
        # (up to two orders of magnitude on the hard percentiles).
        assert exaban["mean"] <= sig22["mean"]
        assert exaban["p95"] <= sig22["p95"]
