"""Ablation: AdaBan's lazy-refinement optimization (Section 3.2.4, opt. 1).

Compares the number of bound evaluations AdaBan performs with the lazy
strategy (re-evaluate only after Shannon expansions) against the eager
strategy (re-evaluate after every decomposition step) on moderate lineages,
and checks that both reach the same certified interval.
"""

import random

import pytest
from conftest import register_report

from repro.boolean.dnf import DNF
from repro.core.adaban import ApproximationTimeout, _AnytimeState
from repro.dtree.heuristics import select_most_frequent
from repro.experiments.report import render_table
from repro.workloads.generators import random_positive_dnf


def _run(function: DNF, variable: int, epsilon: float, lazy: bool):
    state = _AnytimeState(function, select_most_frequent)
    refinements = 0
    while True:
        interval = state.refine(variable)
        refinements += 1
        if interval.satisfies_relative_error(epsilon) or state.is_complete():
            return refinements, interval
        if refinements > 50_000:
            raise ApproximationTimeout("ablation run did not converge")
        state.expand(lazy=lazy)


@pytest.fixture(scope="module")
def ablation_rows():
    rng = random.Random(42)
    rows = []
    for index in range(6):
        function = random_positive_dnf(rng, 14 + index, 18 + index, (2, 3))
        variable = sorted(function.variables)[0]
        lazy_steps, lazy_interval = _run(function, variable, 0.1, lazy=True)
        eager_steps, eager_interval = _run(function, variable, 0.1, lazy=False)
        rows.append([f"random_{index}", len(function.variables),
                     lazy_steps, eager_steps,
                     f"[{lazy_interval.lower}, {lazy_interval.upper}]",
                     f"[{eager_interval.lower}, {eager_interval.upper}]"])
    return rows


def test_ablation_lazy_refinement(benchmark, ablation_rows):
    benchmark(lambda: ablation_rows)
    register_report("ablation_lazy_refinement", render_table(
        ["instance", "vars", "refinements_lazy", "refinements_eager",
         "interval_lazy", "interval_eager"],
        ablation_rows,
        title="Ablation: lazy vs eager bound refinement in AdaBan"))
    total_lazy = sum(row[2] for row in ablation_rows)
    total_eager = sum(row[3] for row in ablation_rows)
    # The lazy strategy performs no more bound evaluations than the eager one.
    assert total_lazy <= total_eager
