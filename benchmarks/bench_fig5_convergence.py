"""Figure 5: observed error over time, AdaBan vs Monte Carlo, on hard lineages."""

import pytest
from conftest import register_report

from repro.experiments.figures import adaban_error_is_monotone, figure5_convergence
from repro.experiments.report import render_series
from repro.workloads.suite import hard_instances


@pytest.fixture(scope="module")
def traces(workloads, config):
    collected = []
    for instance in hard_instances(workloads):
        if instance.num_variables > 45:
            continue  # keep the exact ground truth cheap
        trace = figure5_convergence(instance, config=config, mc_samples=1_500)
        if trace is not None:
            collected.append(trace)
        if len(collected) >= 3:
            break
    return collected


def test_fig5_convergence(benchmark, traces):
    assert traces, "no hard instance produced a convergence trace"
    benchmark(lambda: [t.final_errors() for t in traces])
    for index, trace in enumerate(traces):
        adaban_series = [(p.seconds, p.observed_error) for p in trace.adaban]
        mc_series = [(p.seconds, p.observed_error) for p in trace.monte_carlo]
        register_report(
            f"fig5_instance_{index}_adaban",
            render_series(f"AdaBan observed error ({trace.instance}, "
                          f"x{trace.variable}, exact={trace.exact_value})",
                          adaban_series, "seconds", "observed error"))
        register_report(
            f"fig5_instance_{index}_mc",
            render_series(f"MC observed error ({trace.instance}, "
                          f"x{trace.variable})", mc_series,
                          "seconds", "observed error"))
        # The paper's claims: AdaBan's certified error decreases monotonically
        # and ends at (near) zero, while MC fluctuates and generally ends with
        # a larger error.
        assert adaban_error_is_monotone(trace)
        final_adaban, final_mc = trace.final_errors()
        assert final_adaban <= 1e-9
        assert final_mc >= final_adaban
