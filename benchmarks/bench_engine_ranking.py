"""Ranking benchmark: engine-native cached top-k vs the per-answer path.

Ranks a repeat-traffic stream over the multi-answer workloads (the same
ranking query log arriving for several epochs, as an interactive serving
deployment sees it -- the paper's Section 4.1 use case) two ways:

* **per-answer** -- ``ichiban_topk`` per instance, from scratch, one
  instance at a time (the pre-engine execution path of
  ``rank_facts``/``topk_facts``);
* **engine** -- ``Engine(method="topk", k=...)``: lineages are
  canonicalized, isomorphic answers share one IchiBan run, and repeat
  epochs are served from the lineage cache.

Asserts that both paths report *legitimate* top-k sets under the exact
Banzhaf values (every reported variable's value reaches the k-th largest;
workload lineages tie heavily, so set equality would be ill-posed), that
the lineage cache actually hits, and that the cached engine beats the
per-answer path on wall-clock.

Runs standalone (``python benchmarks/bench_engine_ranking.py``) or under
pytest with the rest of the benchmark harness.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from conftest import emit_bench_json, register_report

from repro.core.ichiban import ichiban_topk, ranked_from_bounds
from repro.engine import Engine, EngineConfig
from repro.experiments.metrics import ground_truth_topk
from repro.workloads.suite import default_workloads

K = 5
EPSILON = 0.1


def _per_answer(lineages) -> Tuple[List[List[int]], float]:
    started = time.monotonic()
    reported = []
    for lineage in lineages:
        ranking = ichiban_topk(lineage, k=K, epsilon=EPSILON)
        reported.append([entry.variable for entry in ranking])
    return reported, time.monotonic() - started


def _engine_run(lineages) -> Tuple[List[List[int]], float, Engine]:
    engine = Engine(EngineConfig(method="topk", k=K, epsilon=EPSILON))
    started = time.monotonic()
    attributions = engine.attribute_lineages(lineages)
    elapsed = time.monotonic() - started
    reported = [
        [entry.variable
         for entry in ranked_from_bounds(attribution.bounds, K)]
        for attribution in attributions
    ]
    return reported, elapsed, engine


def _exact_values(lineages) -> List[Dict[int, int]]:
    engine = Engine(EngineConfig(method="exact"))
    return [{v: int(value) for v, value in attribution.values.items()}
            for attribution in engine.attribute_lineages(lineages)]


def _assert_legitimate(reported: List[int], exact: Dict[int, int],
                       label: str) -> None:
    legitimate = ground_truth_topk(exact, K)
    illegitimate = set(reported) - legitimate
    assert not illegitimate, (
        f"{label} reported variables {sorted(illegitimate)} outside the "
        f"tie-extended ground-truth top-{K}"
    )


def run_benchmark(rounds: int = 3, epochs: int = 3) -> str:
    workloads = default_workloads(include_hard=False)
    per_epoch = [instance.lineage
                 for workload in workloads
                 for instance in workload.instances]
    # Repeat ranking traffic: the same query log arriving several times.
    # The per-answer path re-runs IchiBan every epoch; the engine runs it
    # once per distinct canonical lineage and serves the rest from cache.
    lineages = per_epoch * max(1, epochs)
    exact = _exact_values(lineages)

    per_answer_seconds = engine_seconds = float("inf")
    stats = None
    for _ in range(max(1, rounds)):
        per_answer_sets, per_answer_elapsed = _per_answer(lineages)
        engine_sets, engine_elapsed, engine = _engine_run(lineages)
        for index, values in enumerate(exact):
            _assert_legitimate(per_answer_sets[index], values, "per-answer")
            _assert_legitimate(engine_sets[index], values, "engine")
        per_answer_seconds = min(per_answer_seconds, per_answer_elapsed)
        engine_seconds = min(engine_seconds, engine_elapsed)
        stats = engine.stats.as_dict()

    assert stats["cache_hits"] > 0, (
        "expected isomorphic/repeat lineages to hit the ranking cache"
    )
    assert engine_seconds < per_answer_seconds, (
        f"cached ranking engine ({engine_seconds:.3f}s) should beat the "
        f"per-answer IchiBan path ({per_answer_seconds:.3f}s)"
    )

    speedup = per_answer_seconds / engine_seconds
    emit_bench_json(
        "engine_ranking",
        workload=f"pr1 top-{K} ranking, {max(1, epochs)}-epoch repeat "
                 "traffic, cached engine vs per-answer IchiBan",
        speedup=round(speedup, 3),
        ops_per_sec={
            "ranking.instances_per_sec.engine": round(
                len(lineages) / engine_seconds, 1),
            "ranking.instances_per_sec.per_answer": round(
                len(lineages) / per_answer_seconds, 1),
        },
        metrics={
            "instances": len(lineages),
            "engine_ms": round(engine_seconds * 1000, 1),
            "per_answer_ms": round(per_answer_seconds * 1000, 1),
            "cache_hit_rate": stats["hit_rate"],
            "refinement_rounds": stats["refinement_rounds"],
        },
    )
    lines = [
        f"cpu cores:            {os.cpu_count()}",
        f"instances:            {len(lineages)} "
        f"({len(per_epoch)} distinct x {max(1, epochs)} epochs), "
        f"k = {K}, epsilon = {EPSILON}",
        f"per-answer IchiBan:   {per_answer_seconds * 1000:8.1f} ms",
        f"engine (topk):        {engine_seconds * 1000:8.1f} ms  "
        f"({speedup:.2f}x vs per-answer)",
        f"cache hits:           {stats['cache_hits']} / {len(lineages)} "
        f"(hit rate {stats['hit_rate']:.0%})",
        f"anytime runs:         {stats['compilations']} "
        f"({stats['refinement_rounds']} refinement rounds, "
        f"{stats['partial_results']} partial)",
        f"stage seconds:        {stats['stage_seconds']}",
    ]
    return "\n".join(lines)


def test_engine_ranking_speedup():
    report = run_benchmark()
    register_report("engine_ranking_speedup", report)


if __name__ == "__main__":
    print(run_benchmark())
