"""Kernel benchmark: bitset DNF kernel + fused passes vs the seed reference.

This PR lowered the hot DNF set algebra onto machine-word bitmasks
(:mod:`repro.boolean.bitset`) and replaced the recursive per-call counting
passes with iterative fused passes sharing a subtree-count memo, plus a
Shapley evaluation that computes the variable-independent model vectors
once per tree instead of once per variable.  This benchmark proves the
end-to-end effect on the PR-1 attribution workload (the Academic / IMDB /
TPC-H stand-ins of ``bench_engine_batch``):

* **kernel** -- today's hot path: bitset kernel ON, compile once, fused
  count/Banzhaf passes over a shared counts memo, shared-models Shapley;
* **reference** -- the seed execution kept alive for differential testing:
  frozenset DNF operations (``repro.boolean.dnf.frozenset_reference``) and
  the recursive, unshared passes (:mod:`repro.core.reference`).

Traffic is **repeat-free and cold-cache**: every lineage is attributed
exactly once, from scratch -- no result cache, no artifact reuse across
answers -- so the speedup is pure hot-path work, not caching.  Asserts
bit-identical ``int``/``Fraction`` values and a >= 2x wall-clock win.

A second section micro-benchmarks the kernel operations on the
``hard_wide`` instances of ``workloads.suite.hard_instances()`` (up to
~60-variable clauses masks), whose exact compilation is intractable: the
structural ops run at full width and the one compile attempt carries an
explicit ``timeout_seconds`` budget so CI cannot hang on them.

Runs standalone (``python benchmarks/bench_kernel.py``) or under pytest
with the rest of the benchmark harness.  Emits ``BENCH_kernel.json``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from conftest import emit_bench_json, register_report

from repro.boolean.dnf import DNF, frozenset_reference, set_kernel_enabled
from repro.boolean.idnf import idnf_model_count, lower_idnf, upper_idnf
from repro.boolean.operations import independent_components
from repro.core import reference as seed
from repro.core.exaban import exaban_all
from repro.core.shapley import shapley_all
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.dtree.heuristics import select_most_frequent
from repro.engine.engine import ensure_recursion_head_room
from repro.workloads.suite import default_workloads, hard_instances

#: Wall-clock budget for the (intractable) hard_wide compile attempts.
HARD_WIDE_TIMEOUT_SECONDS = float(os.environ.get("REPRO_BENCH_TIMEOUT", "1.5"))

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _workload_data() -> List[Tuple[tuple, tuple]]:
    """The PR-1 attribution workload as plain clause data (repeat-free)."""
    workloads = default_workloads(include_hard=False)
    return [
        (instance.lineage.sorted_clauses(),
         tuple(sorted(instance.lineage.domain)))
        for workload in workloads for instance in workload.instances
    ]


def _attribute_kernel(data) -> Tuple[list, float]:
    """Cold-cache attribution on the current hot path (kernel ON)."""
    set_kernel_enabled(True)
    results = []
    started = time.monotonic()
    for clauses, domain in data:
        lineage = DNF(clauses, domain=domain)
        tree = compile_dnf(lineage)
        counts: Dict[int, int] = {}
        banzhaf = exaban_all(tree, counts=counts)
        shapley = shapley_all(lineage, tree=tree)
        results.append((banzhaf, shapley))
    return results, time.monotonic() - started


def _attribute_reference(data) -> Tuple[list, float]:
    """The same traffic on the seed path: frozenset ops, recursive passes."""
    ensure_recursion_head_room()  # the recursive reference needs it
    results = []
    with frozenset_reference():
        started = time.monotonic()
        for clauses, domain in data:
            lineage = DNF(clauses, domain=domain)
            tree = compile_dnf(lineage)
            banzhaf = seed.exaban_all_recursive(tree)
            shapley = seed.shapley_all_recursive(lineage, tree)
            results.append((banzhaf, shapley))
        elapsed = time.monotonic() - started
    return results, elapsed


def _ops_per_sec(operation, repetitions: int) -> float:
    """Best-of-3 rate, so one scheduler hiccup does not skew a row."""
    best = float("inf")
    for _ in range(3):
        started = time.monotonic()
        for _ in range(repetitions):
            operation()
        best = min(best, time.monotonic() - started)
    return repetitions / best if best > 0 else float("inf")


def _hard_wide_microbench() -> Tuple[Dict[str, float], List[str]]:
    """Kernel ops/sec on the ``hard_wide`` instances, vs the reference.

    These 40-60 variable instances populate the failure rows of Table 2:
    exact compilation is intractable, so the one compile attempt runs
    under an explicit ``timeout_seconds`` budget (never unbounded in CI).
    The structural operations themselves are cheap and exercised at full
    mask width.
    """
    wide = [instance for instance in hard_instances(default_workloads())
            if "wide" in instance.tags]
    repetitions = 5 if _SMOKE else 40
    ops: Dict[str, float] = {}
    lines: List[str] = []

    datasets = [(instance.lineage.sorted_clauses(),
                 tuple(sorted(instance.lineage.domain)))
                for instance in wide]

    def measure(label: str, op) -> None:
        # Prebuild the functions per mode (outside the timed loop) so the
        # rate is the structural operation itself at full mask width, not
        # object construction.
        set_kernel_enabled(True)
        lineages = [DNF(clauses, domain=domain)
                    for clauses, domain in datasets]
        variables = [select_most_frequent(lineage) for lineage in lineages]
        kernel_rate = _ops_per_sec(lambda: op(lineages, variables),
                                   repetitions)
        with frozenset_reference():
            lineages = [DNF(clauses, domain=domain)
                        for clauses, domain in datasets]
            variables = [select_most_frequent(lineage)
                         for lineage in lineages]
            reference_rate = _ops_per_sec(lambda: op(lineages, variables),
                                          repetitions)
        ops[f"hard_wide.{label}.kernel"] = round(kernel_rate, 1)
        ops[f"hard_wide.{label}.reference"] = round(reference_rate, 1)
        lines.append(
            f"  {label:<12} {kernel_rate:10.0f} ops/s kernel   "
            f"{reference_rate:10.0f} ops/s reference   "
            f"({kernel_rate / reference_rate:.2f}x)"
        )

    def absorb_op(lineages, variables):
        for lineage in lineages:
            lineage.absorb()

    def cofactor_op(lineages, variables):
        for lineage, variable in zip(lineages, variables):
            lineage.cofactor(variable, False)
            lineage.cofactor(variable, True)

    def components_op(lineages, variables):
        for lineage, variable in zip(lineages, variables):
            independent_components(lineage.cofactor(variable, False))

    def idnf_op(lineages, variables):
        for lineage in lineages:
            idnf_model_count(lower_idnf(lineage))
            idnf_model_count(upper_idnf(lineage))

    measure("absorb", absorb_op)
    measure("cofactor", cofactor_op)
    measure("components", components_op)
    measure("lu_idnf", idnf_op)

    # One budgeted compile attempt per instance: hard_wide is intractable
    # by design, so the budget -- not CI's patience -- bounds the attempt.
    set_kernel_enabled(True)
    attempted = completed = 0
    started = time.monotonic()
    for clauses, domain in datasets:
        attempted += 1
        budget = CompilationBudget(timeout_seconds=HARD_WIDE_TIMEOUT_SECONDS)
        try:
            compile_dnf(DNF(clauses, domain=domain), budget=budget)
            completed += 1
        except CompilationLimitReached:
            pass
    elapsed = time.monotonic() - started
    ops["hard_wide.compile.timeout_seconds"] = HARD_WIDE_TIMEOUT_SECONDS
    ops["hard_wide.compile.attempted"] = attempted
    ops["hard_wide.compile.completed"] = completed
    lines.append(
        f"  compile      {attempted} budgeted attempts "
        f"(timeout_seconds={HARD_WIDE_TIMEOUT_SECONDS}), {completed} "
        f"completed, {elapsed:.1f}s total"
    )
    assert elapsed <= attempted * (HARD_WIDE_TIMEOUT_SECONDS + 2.0), (
        "budgeted hard_wide compiles overran their timeout budget"
    )
    return ops, lines


def run_benchmark(rounds: int = 3) -> str:
    if _SMOKE:
        rounds = 1
    data = _workload_data()

    kernel_seconds = reference_seconds = float("inf")
    for _ in range(max(1, rounds)):
        kernel_values, kernel_elapsed = _attribute_kernel(data)
        reference_values, reference_elapsed = _attribute_reference(data)
        # Bit-identical: exact integer Banzhaf values and exact Fraction
        # Shapley values, variable by variable.
        assert kernel_values == reference_values, (
            "bitset kernel diverged from the frozenset reference"
        )
        kernel_seconds = min(kernel_seconds, kernel_elapsed)
        reference_seconds = min(reference_seconds, reference_elapsed)

    speedup = reference_seconds / kernel_seconds
    instances_per_sec = len(data) / kernel_seconds

    ops, hard_lines = _hard_wide_microbench()
    ops["attribution.instances_per_sec.kernel"] = round(instances_per_sec, 1)
    ops["attribution.instances_per_sec.reference"] = round(
        len(data) / reference_seconds, 1)

    assert speedup >= 2.0, (
        f"expected >= 2x end-to-end attribution speedup over the frozenset "
        f"reference, measured {speedup:.2f}x "
        f"({kernel_seconds * 1000:.0f}ms vs {reference_seconds * 1000:.0f}ms)"
    )

    workload_label = ("pr1-attribution: academic+imdb+tpch, repeat-free "
                     "cold-cache, banzhaf+shapley per answer")
    emit_bench_json(
        "kernel",
        workload=workload_label,
        speedup=round(speedup, 3),
        ops_per_sec=ops,
        metrics={
            "instances": len(data),
            "kernel_ms": round(kernel_seconds * 1000, 1),
            "reference_ms": round(reference_seconds * 1000, 1),
            "rounds": max(1, rounds),
            "hard_wide_timeout_seconds": HARD_WIDE_TIMEOUT_SECONDS,
        },
    )

    lines = [
        f"workload:            {workload_label}",
        f"instances:           {len(data)} (each attributed once, cold)",
        f"kernel:              {kernel_seconds * 1000:8.1f} ms "
        f"({instances_per_sec:.0f} instances/s)",
        f"reference (seed):    {reference_seconds * 1000:8.1f} ms",
        f"speedup:             {speedup:.2f}x (assert >= 2.0x, bit-identical "
        f"Banzhaf ints + Shapley Fractions)",
        "hard_wide micro-bench (52-var class, wide masks):",
        *hard_lines,
    ]
    return "\n".join(lines)


def test_kernel_speedup():
    report = run_benchmark()
    register_report("kernel_speedup", report)


if __name__ == "__main__":
    print(run_benchmark())
