"""Overhead guard for the reliability subsystem's disabled state.

The reliability layer (:mod:`repro.reliability`) threads fault-check
hooks through the serving hot path and wraps the persistent store in a
retry/circuit-breaker proxy.  All of that must be *free* when nothing
is failing and no fault plan is installed -- otherwise every production
deployment pays for the chaos lane.  This benchmark runs the
``bench_serve_load`` repeat-traffic workload through two services over
identical traffic:

* **default** -- the stock configuration: fault hooks live (no plan
  installed) and the store behind the resilience wrapper;
* **stripped** -- ``store_retries=0, breaker_threshold=0``: the
  wrapper's escape hatch returns the bare store, hooks still present
  (they are unconditional code) but measured against the same baseline.

Asserts the acceptance criterion: the default configuration costs
**< 2%** wall-clock over the stripped one, with bit-identical
``Fraction`` responses.  Also reports the direct cost of one disabled
``faults.check`` call (nanoseconds/call over a tight loop).

Measurement notes.  Shared CI machines stall individual runs by tens
of milliseconds, which dwarfs a sub-percent overhead; a plain A/B
timing of two ~50 ms runs is pure noise.  Three defenses:

* **request-level pairing** -- each request is timed back-to-back on
  both services (alternating which side goes first), so both sides see
  nearly the same machine state;
* **per-request best-of-rounds** -- scheduler stalls only ever
  *inflate* a timing, so the minimum over rounds converges on each
  request's true cost, and a clean ~10 ms window is far more likely
  than a clean full-run window;
* **escalating re-measurement** -- if a measurement still lands over
  the bar, it is repeated with doubled rounds; only a persistent gap
  (a real regression) fails every attempt.

Emits ``BENCH_reliability.json``.  Environment knobs:
``REPRO_BENCH_CLASSES``, ``REPRO_BENCH_REPEATS``, ``REPRO_BENCH_ROUNDS``
and ``REPRO_BENCH_SMOKE=1`` (CI smoke: smaller classes, fewer rounds).
Runs standalone (``python benchmarks/bench_reliability.py``) or under
pytest with the benchmark harness.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction
from typing import Dict, List, Tuple

from conftest import emit_bench_json, register_report

from bench_serve_load import _fractions, _workload

from repro.engine import EngineConfig
from repro.engine.store import MemoryStore
from repro.engine.serve import AttributionService
from repro.reliability import ResilientStore, faults

#: Acceptance bar: the disabled reliability layer may cost this much.
MAX_OVERHEAD = 0.02


def _service(database, stripped: bool) -> AttributionService:
    if stripped:
        config = EngineConfig(store_retries=0, breaker_threshold=0)
    else:
        config = EngineConfig()  # stock reliability defaults
    return AttributionService(database, config, store=MemoryStore())


def _measure(database, traffic: List[str], rounds: int
             ) -> Tuple[float, float, float,
                        List[Dict[str, object]], List[Dict[str, object]]]:
    """Paired per-request best-of-``rounds`` timing of both configs.

    Returns ``(overhead, default_seconds, stripped_seconds,
    default_responses, stripped_responses)`` where the times are the
    sums of per-request minima and the responses come from the first
    round (the services are deterministic).
    """
    best_default = [float("inf")] * len(traffic)
    best_stripped = [float("inf")] * len(traffic)
    default_responses: List[Dict[str, object]] = []
    stripped_responses: List[Dict[str, object]] = []
    for round_index in range(max(1, rounds)):
        default = _service(database, stripped=False)
        stripped = _service(database, stripped=True)
        assert isinstance(default.store, ResilientStore), (
            "default run lost its resilience wrapper")
        assert isinstance(stripped.store, MemoryStore), (
            "escape hatch failed: the stripped run is wrapped")
        for index, query in enumerate(traffic):
            request = {"op": "attribute", "query": query}
            default_first = (round_index + index) % 2 == 0
            for service in ((default, stripped) if default_first
                            else (stripped, default)):
                started = time.perf_counter()
                response = service.submit(dict(request))
                elapsed = time.perf_counter() - started
                if service is default:
                    best_default[index] = min(best_default[index], elapsed)
                    if round_index == 0:
                        default_responses.append(response)
                else:
                    best_stripped[index] = min(best_stripped[index],
                                               elapsed)
                    if round_index == 0:
                        stripped_responses.append(response)
    default_seconds = sum(best_default)
    stripped_seconds = sum(best_stripped)
    overhead = default_seconds / stripped_seconds - 1.0
    return (overhead, default_seconds, stripped_seconds,
            default_responses, stripped_responses)


def _hook_ns_per_call(calls: int = 1_000_000) -> float:
    """Direct cost of one disabled ``faults.check`` (no plan installed)."""
    faults.clear()
    check = faults.check
    started = time.perf_counter()
    for _ in range(calls):
        check("store.flush")
    return (time.perf_counter() - started) / calls * 1e9


def run_benchmark() -> str:
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    num_classes = int(os.environ.get("REPRO_BENCH_CLASSES",
                                     "3" if smoke else "6"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS",
                                 "2" if smoke else "3"))
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS",
                                "6" if smoke else "10"))
    size = 4 if smoke else 5

    database, queries = _workload(num_classes, size)
    traffic = queries * repeats

    _measure(database, traffic, rounds=1)  # warm-up, untimed
    attempts = 0
    overhead = best_default = best_stripped = float("inf")
    default_responses = stripped_responses = []
    while True:
        attempts += 1
        (overhead, best_default, best_stripped,
         default_responses, stripped_responses) = _measure(
            database, traffic, rounds=rounds * attempts)
        if overhead < MAX_OVERHEAD or attempts >= 3:
            break

    # Correctness first: both configurations produce bit-identical
    # exact Fractions for every request.
    for default, stripped in zip(default_responses, stripped_responses):
        assert default["ok"] and stripped["ok"]
        assert _fractions(default) == _fractions(stripped), (
            "reliability wrapper changed a served value")

    assert overhead < MAX_OVERHEAD, (
        f"disabled reliability hooks cost {overhead:.2%} "
        f"(bar: < {MAX_OVERHEAD:.0%}) -- "
        f"{best_default * 1000:.1f} ms default vs "
        f"{best_stripped * 1000:.1f} ms stripped "
        f"after {attempts} escalating measurements")

    hook_ns = _hook_ns_per_call(200_000 if smoke else 1_000_000)

    emit_bench_json(
        "reliability",
        workload=f"{len(traffic)} serial requests of repeat traffic over "
                 f"{num_classes} non-read-once query classes "
                 f"(bipartite size {size})",
        speedup=round(best_stripped / best_default, 4),
        ops_per_sec={
            "serve.requests_per_sec.default":
                round(len(traffic) / best_default, 1),
            "serve.requests_per_sec.stripped":
                round(len(traffic) / best_stripped, 1),
        },
        metrics={
            "overhead_fraction": round(overhead, 4),
            "overhead_bar": MAX_OVERHEAD,
            "best_default_ms": round(best_default * 1000, 2),
            "best_stripped_ms": round(best_stripped * 1000, 2),
            "rounds": max(1, rounds) * attempts,
            "measurement_attempts": attempts,
            "requests": len(traffic),
            "disabled_hook_ns_per_call": round(hook_ns, 1),
            "exactness": "default and stripped responses "
                         "Fraction-identical",
        },
    )

    return "\n".join([
        f"requests per run:     {len(traffic)} "
        f"({num_classes} classes x {repeats} repeats, "
        f"per-request best of {max(1, rounds) * attempts} paired rounds)",
        f"default (wrapped):    {best_default * 1000:8.1f} ms",
        f"stripped (bare):      {best_stripped * 1000:8.1f} ms",
        f"disabled overhead:    {overhead:8.2%}  (bar: < "
        f"{MAX_OVERHEAD:.0%})",
        f"faults.check (off):   {hook_ns:8.1f} ns/call",
        "exactness:            all responses Fraction-identical "
        "across configurations",
    ])


def test_reliability_overhead():
    report = run_benchmark()
    register_report("reliability", report)


if __name__ == "__main__":
    print(run_benchmark())
