"""Table 6: AdaBan's success rate and runtime on instances where ExaBan fails."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table6_adaban_when_exaban_fails

_COLUMNS = ["dataset", "exaban_failures", "adaban_success_rate", "mean",
            "p50", "p90", "max"]


def test_table6_adaban_when_exaban_fails(benchmark, workload_results):
    rows = benchmark(table6_adaban_when_exaban_fails, workload_results)
    register_report("table6_adaban_when_exaban_fails",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 6: AdaBan where ExaBan "
                                               "fails"))
    # The hard "wide" instances are designed to exceed the per-instance
    # budget for exact compilation, so at least one dataset reports failures
    # (the paper's Table 6 covers IMDB and TPC-H).
    assert sum(row["exaban_failures"] for row in rows) > 0
    for row in rows:
        if row["exaban_failures"]:
            assert 0.0 <= row["adaban_success_rate"] <= 1.0
