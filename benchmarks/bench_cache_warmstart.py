"""Warm-start benchmark: persistent cache tier vs a cold process.

Simulates the deployment story of the store tier
(:mod:`repro.engine.store`): a **cold process** serves several epochs of
the repeat-traffic workload with a fresh engine backed by an empty
:class:`~repro.engine.store.DiskStore` (epoch 0 computes everything and
persists it; later epochs hit memory), then a **warm process** -- a brand
new engine with a brand new ``DiskStore`` handle over the *same
directory*, i.e. a restart -- serves the same first epoch straight from
disk.

Asserts the acceptance criteria of the store tier:

* the warm process's first epoch is served at a **>= 80 % hit rate**
  (store tier plus in-batch dedup -- no recomputation of anything the
  cold process already solved);
* the warm first epoch is **faster** than the cold first epoch
  (deserializing beats compiling);
* warm values are **bit-identical** to cold values: exact ``Fraction``
  equality, variable for variable, instance for instance.

Environment knobs: ``REPRO_BENCH_EPOCHS`` (cold epochs, default 3),
``REPRO_BENCH_ROUNDS`` (best-of timing rounds, default 2), and
``REPRO_BENCH_SMOKE=1`` for the CI smoke configuration (2 epochs, 1
round).  Runs standalone (``python benchmarks/bench_cache_warmstart.py``)
or under pytest with the benchmark harness (the report lands in
``benchmarks/results/cache_warmstart.txt``).
"""

from __future__ import annotations

import os
import tempfile
from fractions import Fraction
from typing import List

from conftest import emit_bench_json, register_report

from repro.engine.store import DiskStore
from repro.experiments.runner import ExperimentConfig, run_workload_epochs
from repro.workloads.suite import Workload, default_workloads


def _combined_workload() -> Workload:
    instances = tuple(
        instance
        for workload in default_workloads(include_hard=False)
        for instance in workload.instances
    )
    return Workload(name="combined", instances=instances)


def _assert_identical(cold_values: List, warm_values: List) -> None:
    assert len(cold_values) == len(warm_values)
    for cold, warm in zip(cold_values, warm_values):
        assert cold.values == warm.values, (
            "warm-started values diverged from cold computation"
        )
        for value in warm.values.values():
            assert isinstance(value, Fraction), (
                f"warm value deserialized as {type(value).__name__}, "
                "not Fraction"
            )


def run_benchmark(epochs: int = None, rounds: int = None) -> str:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        epochs = epochs or 2
        rounds = rounds or 1
    epochs = epochs or int(os.environ.get("REPRO_BENCH_EPOCHS", "3"))
    rounds = rounds or int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))

    workload = _combined_workload()
    config = ExperimentConfig()

    cold_first = warm_first = float("inf")
    cold_reports = warm_reports = None
    store_stats = None
    for _ in range(max(1, rounds)):
        with tempfile.TemporaryDirectory() as directory:
            # Cold process: empty store, everything is computed once and
            # persisted as a side effect of serving.
            cold_store = DiskStore(directory)
            reports, cold_values = run_workload_epochs(
                workload, epochs=epochs, config=config, store=cold_store)
            # Warm process: new engine, new store handle, same directory
            # -- the restart scenario.  Its memory tier starts empty; the
            # first epoch is served from disk.
            warm_store = DiskStore(directory)
            warm, warm_values = run_workload_epochs(
                workload, epochs=1, config=config, store=warm_store)
            _assert_identical(cold_values, warm_values)
            if reports[0].seconds < cold_first:
                cold_first = reports[0].seconds
                cold_reports = reports
            if warm[0].seconds < warm_first:
                warm_first = warm[0].seconds
                warm_reports = warm
                store_stats = warm_store.stats()

    warm_stats = warm_reports[0].stats
    hit_rate = warm_stats["hit_rate"]
    assert hit_rate >= 0.8, (
        f"warm first-epoch hit rate {hit_rate:.0%} below the 80% target"
    )
    assert warm_stats["store_hits"] > 0, (
        "expected the warm process to serve from the store tier"
    )
    assert warm_first < cold_first, (
        f"warm first epoch ({warm_first:.3f}s) should beat the cold first "
        f"epoch ({cold_first:.3f}s)"
    )

    speedup = cold_first / warm_first
    cold_hit_rate = cold_reports[0].stats["hit_rate"]
    emit_bench_json(
        "cache_warmstart",
        workload="pr1-attribution repeat traffic, warm-started process "
                 "vs cold first epoch",
        speedup=round(speedup, 3),
        ops_per_sec={
            "attribution.instances_per_sec.warm": round(
                len(workload.instances) / warm_first, 1),
            "attribution.instances_per_sec.cold": round(
                len(workload.instances) / cold_first, 1),
        },
        metrics={
            "instances_per_epoch": len(workload.instances),
            "cold_first_ms": round(cold_first * 1000, 1),
            "warm_first_ms": round(warm_first * 1000, 1),
            "warm_hit_rate": hit_rate,
            "store_entries": store_stats["entries"],
        },
    )
    lines = [
        f"instances per epoch:   {len(workload.instances)}",
        f"cold epochs:           {epochs} (rounds: {max(1, rounds)})",
        f"cold first epoch:      {cold_first * 1000:8.1f} ms  "
        f"(hit rate {cold_hit_rate:.0%})",
    ]
    for report in cold_reports[1:]:
        lines.append(
            f"cold epoch {report.epoch}:          "
            f"{report.seconds * 1000:8.1f} ms  "
            f"(hit rate {report.stats['hit_rate']:.0%})"
        )
    lines += [
        f"warm first epoch:      {warm_first * 1000:8.1f} ms  "
        f"({speedup:.2f}x vs cold first epoch)",
        f"warm tier hit rates:   {warm_stats['tier_hit_rates']}",
        f"warm first-epoch hits: memory {warm_stats['cache_hits']}, "
        f"store {warm_stats['store_hits']}, "
        f"computed {warm_stats['cache_misses']}",
        f"store:                 {store_stats['entries']} entries in "
        f"{store_stats['shard_files']} shards, "
        f"{store_stats['disk_bytes']} bytes",
        f"exactness:             warm values bit-identical to cold "
        f"(Fraction equality over {len(workload.instances)} instances)",
    ]
    return "\n".join(lines)


def test_cache_warmstart():
    report = run_benchmark()
    register_report("cache_warmstart", report)


if __name__ == "__main__":
    print(run_benchmark())
