"""Store-scale benchmark: the append-only log backend at 10^5+ entries.

The persistent tier's scale story (:mod:`repro.engine.logstore`) makes
four claims, and this benchmark measures all of them on one synthetic
result corpus of distinct canonical keys with big-numerator exact
``Fraction`` payloads:

* **flush throughput** -- batched put+flush into a :class:`LogStore`
  (append one frame per record) vs a :class:`DiskStore` (rewrite every
  dirty JSON shard), asserted **>= 5x** at full scale.  The DiskStore
  side is measured at a smaller entry count (its per-flush cost grows
  with store size, the very problem the log fixes), which only
  *understates* the reported speedup;
* **point-read latency vs store size** -- random ``get`` latency
  sampled at a ladder of store sizes up to the full corpus, asserted
  roughly flat (an in-memory offset index + one seek per read does not
  degrade with log length);
* **warm-restart cost** -- closing and reopening the full store, i.e.
  the sequential index-rebuild scan a restarted serving process pays;
* **compaction cost** -- superseding a third of the corpus and timing
  ``compact()``, reporting the bytes it reclaims.

Bit-identical round-trips are asserted on a sample of every phase's
reads.  Environment knobs: ``REPRO_BENCH_STORE_ENTRIES`` (default
100000), ``REPRO_BENCH_SMOKE=1`` for the CI smoke configuration (3000
entries, relaxed thresholds).  Runs standalone
(``python benchmarks/bench_store_scale.py``) or under pytest; emits
``benchmarks/results/BENCH_store_scale.json`` and
``benchmarks/results/store_scale.txt``.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from fractions import Fraction
from typing import Dict, List

from conftest import emit_bench_json, register_report

from repro.engine.cache import CachedAttribution
from repro.engine.logstore import LogStore
from repro.engine.store import DiskStore

#: Prime denominator: every index yields a distinct, irreducible epsilon,
#: hence a distinct canonical result key.
_PRIME = 1_000_003


def _key(index: int):
    return ((3, ((0, 1), (1, 2))), "approximate",
            Fraction(index + 1, _PRIME), None)


def _value(index: int) -> CachedAttribution:
    # Big numerators keep the exact-arithmetic codec honest at scale.
    return CachedAttribution(
        method_used="approximate",
        values={0: Fraction(12345678901234567890 + index, 7),
                1: Fraction(-index - 1, 3)},
        bounds={0: (index, index + 1), 1: (-index - 1, 0)},
        converged=True,
    )


def _fill(store, start: int, stop: int, batch: int) -> float:
    """Write [start, stop) in put+flush batches; returns seconds."""
    started = time.perf_counter()
    for base in range(start, stop, batch):
        for index in range(base, min(base + batch, stop)):
            store.put(_key(index), _value(index))
        store.flush()
    return time.perf_counter() - started


def _point_read_us(store, size: int, samples: int,
                   rng: random.Random) -> float:
    """Mean ``get`` latency (microseconds) over random existing keys."""
    indexes = [rng.randrange(size) for _ in range(samples)]
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for index in indexes:
            if store.get(_key(index)) is None:
                raise AssertionError(f"entry {index} missing at size {size}")
        best = min(best, time.perf_counter() - started)
    return best / samples * 1e6


def _assert_exact(store, indexes: List[int]) -> None:
    for index in indexes:
        loaded = store.get(_key(index))
        expected = _value(index)
        assert loaded == expected, f"entry {index} diverged"
        for variable, value in loaded.values.items():
            assert isinstance(value, Fraction)
            assert value.numerator == expected.values[variable].numerator
            assert value.denominator == expected.values[variable].denominator


def run_benchmark(entries: int = None) -> str:
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if entries is None:
        entries = 3_000 if smoke else int(
            os.environ.get("REPRO_BENCH_STORE_ENTRIES", "100000"))
    batch = max(100, min(2_000, entries // 10))
    # DiskStore's flush cost grows with what is already in the store, so
    # timing it over a smaller corpus is strictly favorable to it; the
    # asserted speedup is a floor.
    disk_entries = min(entries, 20_000)
    min_speedup = 1.5 if smoke else 5.0
    max_flatness = 4.0 if smoke else 3.0
    rng = random.Random(20260808)

    with tempfile.TemporaryDirectory() as directory:
        # -- flush throughput: DiskStore baseline ----------------------- #
        disk = DiskStore(os.path.join(directory, "disk"),
                         max_entries=max(disk_entries, 65_536))
        disk_seconds = _fill(disk, 0, disk_entries, batch)
        disk_rate = disk_entries / disk_seconds
        _assert_exact(disk, [rng.randrange(disk_entries) for _ in range(50)])

        # -- flush throughput + read ladder: LogStore ------------------- #
        log = LogStore(os.path.join(directory, "log"),
                       max_entries=max(entries, 65_536),
                       auto_compact=False)
        sizes = sorted({max(1, entries // 10), entries // 2, entries})
        # Append throughput is size-independent, so each ladder segment
        # is an independent sample; take the best to shed transient I/O
        # stalls (page-cache writeback) that one long fill would absorb.
        segment_rates = []
        read_ladder: Dict[int, float] = {}
        filled = 0
        for size in sizes:
            seconds = _fill(log, filled, size, batch)
            segment_rates.append((size - filled) / seconds)
            filled = size
            read_ladder[size] = _point_read_us(
                log, size, min(200, size), rng)
        log_rate = max(segment_rates)
        speedup = log_rate / disk_rate
        flatness = read_ladder[sizes[-1]] / max(read_ladder[sizes[0]], 1e-9)
        _assert_exact(log, [rng.randrange(entries) for _ in range(100)])
        log_bytes = log.stats()["disk_bytes"]

        # -- warm restart: reopen pays one sequential scan -------------- #
        log.close()
        started = time.perf_counter()
        log = LogStore(os.path.join(directory, "log"),
                       max_entries=max(entries, 65_536),
                       auto_compact=False)
        restart_seconds = time.perf_counter() - started
        assert len(log) == entries, "restart lost entries"
        _assert_exact(log, [rng.randrange(entries) for _ in range(50)])

        # -- compaction: supersede a third, rewrite the survivors ------- #
        garbage_fraction = entries // 3
        _fill(log, 0, garbage_fraction, batch)  # re-puts: all garbage
        before_bytes = log.stats()["disk_bytes"]
        started = time.perf_counter()
        reclaimed = log.compact()
        compact_seconds = time.perf_counter() - started
        assert reclaimed > 0, "compaction reclaimed nothing"
        assert len(log) == entries
        _assert_exact(log, [rng.randrange(entries) for _ in range(50)])
        read_after_compact = _point_read_us(log, entries, 200, rng)
        log.close()

    assert speedup >= min_speedup, (
        f"log flush throughput only {speedup:.1f}x DiskStore "
        f"(target {min_speedup}x)")
    assert flatness <= max_flatness, (
        f"point reads degraded {flatness:.1f}x from {sizes[0]} to "
        f"{sizes[-1]} entries (target <= {max_flatness}x)")

    emit_bench_json(
        "store_scale",
        workload=f"synthetic result corpus, {entries} distinct canonical "
                 "keys with exact Fraction payloads",
        speedup=round(speedup, 2),
        ops_per_sec={
            "store.flush_entries_per_sec.log": round(log_rate, 1),
            "store.flush_entries_per_sec.disk": round(disk_rate, 1),
            "store.point_reads_per_sec": round(
                1e6 / read_ladder[sizes[-1]], 1),
            "store.warm_restart_entries_per_sec": round(
                entries / restart_seconds, 1),
        },
        metrics={
            "entries": entries,
            "disk_baseline_entries": disk_entries,
            "batch": batch,
            "point_read_us_by_size": {
                str(size): round(value, 2)
                for size, value in read_ladder.items()},
            "point_read_flatness": round(flatness, 2),
            "point_read_us_after_compact": round(read_after_compact, 2),
            "warm_restart_ms": round(restart_seconds * 1000, 1),
            "compact_ms": round(compact_seconds * 1000, 1),
            "compact_reclaimed_bytes": reclaimed,
            "log_disk_bytes": log_bytes,
            "disk_bytes_before_compact": before_bytes,
        },
    )

    ladder = "  ".join(f"{size}: {value:6.2f}us"
                       for size, value in read_ladder.items())
    lines = [
        f"entries:               {entries} (batch {batch}; disk baseline "
        f"over {disk_entries})",
        f"flush throughput:      log {log_rate:10.0f} entries/s   "
        f"disk {disk_rate:8.0f} entries/s   ({speedup:.1f}x, "
        f"target >= {min_speedup}x)",
        f"point reads by size:   {ladder}",
        f"  flatness:            {flatness:.2f}x from smallest to full "
        f"(target <= {max_flatness}x)",
        f"warm restart:          {restart_seconds * 1000:8.1f} ms to "
        f"rebuild the index over {entries} entries "
        f"({entries / restart_seconds:.0f} entries/s)",
        f"compaction:            {compact_seconds * 1000:8.1f} ms, "
        f"reclaimed {reclaimed} of {before_bytes} bytes "
        f"({garbage_fraction} superseded records)",
        f"  reads after compact: {read_after_compact:6.2f}us",
        f"exactness:             sampled round-trips bit-identical "
        f"(Fraction numerator/denominator equality)",
    ]
    return "\n".join(lines)


def test_store_scale():
    report = run_benchmark()
    register_report("store_scale", report)


if __name__ == "__main__":
    print(run_benchmark())
