"""Load/concurrency benchmark for the serving front-end.

Simulates the deployment story of :class:`~repro.engine.frontend.
ServingFrontend`: several clients hammer one service with *repeat
traffic* (the same pool of non-read-once query classes, so concurrent
duplicates are the norm, as in any dashboard- or API-driven
deployment).  Three runs over identical traffic:

* **serial** -- one thread calling :meth:`AttributionService.submit`;
  the ground truth for both values and the single-thread baseline rate;
* **coalesce-off** -- the threaded front-end with single-flight
  coalescing and micro-batching disabled: racing duplicates compute
  redundantly (the failure mode the front-end exists to fix);
* **coalesce-on** -- the full front-end: duplicates ride the leader's
  computation.

Asserts the acceptance criteria of the serving tier:

* coalescing lifts throughput **>= 1.5x** over the disabled run at
  >= 4 concurrent clients;
* every concurrent response is **bit-identical** (exact ``Fraction``
  equality) to the serial run;
* **zero dropped or failed responses**: every request produces exactly
  one ``ok`` response in every run.

Emits ``BENCH_serve_load.json`` (throughput_rps, p50/p95 latency,
failure_rate, coalesce rate per run) plus a per-run table
(``serve_load_run_table.csv``).  Environment knobs:
``REPRO_BENCH_CLIENTS`` (default 4), ``REPRO_BENCH_CLASSES`` (query
classes, default 6), ``REPRO_BENCH_REPEATS`` (passes over the pool per
client, default 2), ``REPRO_BENCH_ROUNDS`` (best-of timing rounds,
default 2), and ``REPRO_BENCH_SMOKE=1`` for the CI smoke configuration
(4 clients, 3 small classes, 1 repeat, 1 round, and a relaxed >= 1.0x
sanity bar instead of the full run's >= 1.5x claim -- shared CI runners
cannot prove a scheduling-sensitive throughput ratio).  Runs standalone
(``python benchmarks/bench_serve_load.py``) or under pytest with the
benchmark harness.
"""

from __future__ import annotations

import csv
import os
import threading
import time
from fractions import Fraction
from typing import Dict, List, Tuple

from conftest import emit_bench_json, register_report

from repro import Database
from repro.engine.frontend import FrontendConfig, ServingFrontend
from repro.engine.serve import AttributionService

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "results")

#: Non-read-once clause: compilation must Shannon-expand, so every class
#: costs real compute (about 10-40x a warm cache hit) -- the regime
#: where sharing computation matters.
_CLASS_QUERY = "Q() :- R{i}(X), S{i}(X, Y), T{i}(Y)"


def _workload(num_classes: int, size: int,
              ) -> Tuple[Database, List[str]]:
    """One database carrying ``num_classes`` disjoint bipartite joins.

    Class ``i`` drops ``i`` edges from its complete bipartite graph:
    distinct clause counts guarantee the classes are *not* WL-isomorphic
    (renaming relations alone would coalesce into one canonical lineage
    and the whole pool would compile exactly once)."""
    db = Database()
    for i in range(num_classes):
        drop = {((j * 2 + i) % size, (j + i) % size) for j in range(i)}
        for x in range(size):
            db.add_fact(f"R{i}", (x,))
            db.add_fact(f"T{i}", (x,))
            for y in range(size):
                if (x, y) not in drop:
                    db.add_fact(f"S{i}", (x, y))
    queries = [_CLASS_QUERY.format(i=i) for i in range(num_classes)]
    return db, queries


def _fractions(response) -> List[List[Tuple[str, Fraction]]]:
    return [
        [(entry["fact"], Fraction(entry["value"]))
         for entry in answer["attributions"]]
        for answer in response["answers"]
    ]


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_serial(database: Database, traffic: List[str]) -> Dict[str, object]:
    service = AttributionService(database)
    latencies: List[float] = []
    responses = []
    started = time.perf_counter()
    for query in traffic:
        t0 = time.perf_counter()
        responses.append(service.submit({"op": "attribute",
                                         "query": query}))
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    return {"responses": responses, "latencies": latencies,
            "elapsed": elapsed, "service": service, "coalesced": 0}


def _run_concurrent(database: Database, per_client: List[str],
                    clients: int, coalesce: bool) -> Dict[str, object]:
    """Each client thread submits the same repeat-traffic sequence."""
    service = AttributionService(database)
    config = FrontendConfig(
        workers=clients,
        max_queue=max(16, clients * 4),
        coalesce=coalesce,
        batch_max=8 if coalesce else 1,
    )
    frontend = ServingFrontend(service, config)
    barrier = threading.Barrier(clients)
    per_client_out: List[List] = [[] for _ in range(clients)]
    latencies: List[List[float]] = [[] for _ in range(clients)]

    def client(index: int) -> None:
        barrier.wait()
        for query in per_client:
            t0 = time.perf_counter()
            response = frontend.submit({"op": "attribute", "query": query,
                                        "client": f"client-{index}"})
            latencies[index].append(time.perf_counter() - t0)
            per_client_out[index].append(response)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    report = frontend.stats()
    frontend.close()

    responses = [response for out in per_client_out for response in out]
    assert len(responses) == clients * len(per_client), (
        "dropped responses: "
        f"{len(responses)} != {clients * len(per_client)}")
    return {"responses": responses,
            "latencies": [l for ls in latencies for l in ls],
            "elapsed": elapsed, "service": service,
            "coalesced": service.stats_counters.coalesced_requests,
            "frontend": report}


def _row(name: str, run: Dict[str, object], clients: int,
         coalesce: str) -> Dict[str, object]:
    responses = run["responses"]
    latencies = run["latencies"]
    failures = sum(1 for response in responses if not response.get("ok"))
    return {
        "run": name,
        "clients": clients,
        "coalesce": coalesce,
        "requests": len(responses),
        "throughput_rps": round(len(responses) / run["elapsed"], 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 2),
        "failure_rate": round(failures / len(responses), 4),
        "coalesce_rate": round(run["coalesced"] / len(responses), 3),
    }


def _write_run_table(rows: List[Dict[str, object]]) -> str:
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, "serve_load_run_table.csv")
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path


def run_benchmark(clients: int = None, num_classes: int = None,
                  repeats: int = None) -> str:
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    clients = clients or int(os.environ.get(
        "REPRO_BENCH_CLIENTS", "4"))
    num_classes = num_classes or int(os.environ.get(
        "REPRO_BENCH_CLASSES", "3" if smoke else "6"))
    repeats = repeats or int(os.environ.get(
        "REPRO_BENCH_REPEATS", "1" if smoke else "2"))
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS",
                                "1" if smoke else "2"))
    size = 4 if smoke else 5
    # The >= 1.5x throughput claim is made by the full benchmark; the
    # smoke configuration runs the identical machinery on a noisy shared
    # runner and only sanity-checks that coalescing does not *hurt*.
    target_speedup = 1.0 if smoke else 1.5
    assert clients >= 4, "the acceptance claim is at >= 4 clients"

    database, queries = _workload(num_classes, size)
    per_client = queries * repeats

    # Ground truth: one serial pass over each client's traffic.
    serial = _run_serial(database, per_client * clients)
    expected = {}
    for query, response in zip(per_client * clients, serial["responses"]):
        assert response["ok"], response
        expected[query] = _fractions(response)

    # Best-of-rounds timing (each round gets fresh services and caches);
    # correctness is asserted on every round's responses below.
    off = on = None
    for _ in range(max(1, rounds)):
        round_off = _run_concurrent(database, per_client, clients,
                                    coalesce=False)
        round_on = _run_concurrent(database, per_client, clients,
                                   coalesce=True)
        if off is None or round_off["elapsed"] < off["elapsed"]:
            off = round_off
        if on is None or round_on["elapsed"] < on["elapsed"]:
            on = round_on

    # Exactness: every concurrent response (either mode) bit-identical
    # to the serial Fractions for its query.
    for run in (off, on):
        for query, response in zip(per_client * clients,
                                   run["responses"]):
            assert response["ok"], response
            assert _fractions(response) == expected[query], (
                f"concurrent values diverged from serial for {query!r}")

    rows = [
        _row("serial", serial, 1, "n/a"),
        _row("frontend-coalesce-off", off, clients, "off"),
        _row("frontend-coalesce-on", on, clients, "on"),
    ]
    table_path = _write_run_table(rows)

    on_rps = rows[2]["throughput_rps"]
    off_rps = rows[1]["throughput_rps"]
    speedup = on_rps / off_rps
    assert speedup >= target_speedup, (
        f"coalescing lifted throughput only {speedup:.2f}x over the "
        f"disabled front-end (target >= {target_speedup}x at "
        f"{clients} clients)")
    assert rows[1]["failure_rate"] == 0 and rows[2]["failure_rate"] == 0
    assert on["coalesced"] > 0, "no request ever coalesced"

    emit_bench_json(
        "serve_load",
        workload=f"{clients} clients x {len(per_client)} requests of "
                 f"repeat traffic over {num_classes} non-read-once "
                 f"query classes (bipartite size {size})",
        speedup=round(speedup, 3),
        ops_per_sec={
            "serve.requests_per_sec.coalesce_on": on_rps,
            "serve.requests_per_sec.coalesce_off": off_rps,
            "serve.requests_per_sec.serial": rows[0]["throughput_rps"],
        },
        metrics={
            "runs": rows,
            "clients": clients,
            "requests_per_run": clients * len(per_client),
            "coalesce_rate_on": rows[2]["coalesce_rate"],
            "frontend_stats_on": on["frontend"],
            "exactness": "all responses Fraction-identical to serial",
            "run_table_csv": os.path.basename(table_path),
        },
    )

    header = (f"{'run':<22} {'clients':>7} {'req':>5} {'rps':>8} "
              f"{'p50 ms':>8} {'p95 ms':>8} {'fail':>6} {'coalesce':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['run']:<22} {row['clients']:>7} {row['requests']:>5} "
            f"{row['throughput_rps']:>8.1f} {row['p50_ms']:>8.2f} "
            f"{row['p95_ms']:>8.2f} {row['failure_rate']:>6.2%} "
            f"{row['coalesce_rate']:>9.1%}")
    lines += [
        "",
        f"coalescing speedup:  {speedup:.2f}x over the disabled "
        f"front-end (target >= {target_speedup}x, best of "
        f"{max(1, rounds)} rounds)",
        f"exactness:           all {2 * clients * len(per_client)} "
        "concurrent responses Fraction-identical to serial",
        "delivery:            zero dropped responses, zero failures",
    ]
    return "\n".join(lines)


def test_serve_load():
    report = run_benchmark()
    register_report("serve_load", report)


if __name__ == "__main__":
    print(run_benchmark())
