"""Engine benchmark: batched, cached attribution vs the serial seed path.

Attributes a repeat-traffic stream over the multi-answer workloads
(Academic, IMDB, TPC-H stand-ins; the same query log arriving for several
epochs, as a serving deployment sees it) three ways:

* **seed-serial** -- the pre-engine execution path: compile a d-tree and run
  ExaBan per instance, from scratch, one instance at a time;
* **engine-serial** -- the batched engine with lineage canonicalization and
  the result cache, still single-process;
* **engine-parallel** -- the same engine fanning distinct lineages out over
  a small process pool (informational: a parallel wall-clock win needs
  multiple cores and per-lineage compute that dwarfs pool startup; the
  reported core count tells you which regime you are in).

Asserts the engine produces identical attributions to the seed path, that
the lineage cache actually hits (isomorphic answers are common in workload
query logs), and that the cached engine beats the seed path on wall-clock.

Runs standalone (``python benchmarks/bench_engine_batch.py``) or under
pytest with the rest of the benchmark harness.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction
from typing import Dict, List, Tuple

from conftest import emit_bench_json, register_report

from repro.core.exaban import exaban_all
from repro.dtree.compile import compile_dnf
from repro.engine import Engine, EngineConfig
from repro.workloads.suite import default_workloads


def _seed_serial(lineages) -> Tuple[List[Dict[int, Fraction]], float]:
    started = time.monotonic()
    values = []
    for lineage in lineages:
        tree = compile_dnf(lineage)
        values.append({v: Fraction(x) for v, x in exaban_all(tree).items()})
    return values, time.monotonic() - started


def _engine_run(lineages, max_workers: int
                ) -> Tuple[List[Dict[int, Fraction]], float, Engine]:
    engine = Engine(EngineConfig(method="exact", max_workers=max_workers,
                                 parallel_min_tasks=2))
    started = time.monotonic()
    attributions = engine.attribute_lineages(lineages)
    elapsed = time.monotonic() - started
    return [a.values for a in attributions], elapsed, engine


def run_benchmark(rounds: int = 3, epochs: int = 3) -> str:
    workloads = default_workloads(include_hard=False)
    per_epoch = [instance.lineage
                 for workload in workloads
                 for instance in workload.instances]
    # Repeat traffic: the same query log arriving several times, the
    # serving scenario the engine exists for.  The seed path recomputes
    # every epoch; the engine compiles the distinct lineage shapes once.
    lineages = per_epoch * max(1, epochs)

    # Best-of-N timing so one scheduling hiccup on a shared CI runner does
    # not flip the wall-clock assertion; correctness is asserted every round.
    seed_seconds = serial_seconds = parallel_seconds = float("inf")
    stats = None
    for _ in range(max(1, rounds)):
        seed_values, seed_elapsed = _seed_serial(lineages)
        serial_values, serial_elapsed, serial_engine = _engine_run(lineages, 0)
        parallel_values, parallel_elapsed, _ = _engine_run(lineages, 4)
        assert serial_values == seed_values, "engine-serial diverged from seed path"
        assert parallel_values == seed_values, "engine-parallel diverged from seed path"
        seed_seconds = min(seed_seconds, seed_elapsed)
        serial_seconds = min(serial_seconds, serial_elapsed)
        parallel_seconds = min(parallel_seconds, parallel_elapsed)
        stats = serial_engine.stats.as_dict()

    assert stats["cache_hits"] > 0, "expected isomorphic lineages to hit the cache"
    assert serial_seconds < seed_seconds, (
        f"cached engine ({serial_seconds:.3f}s) should beat the serial seed "
        f"path ({seed_seconds:.3f}s)"
    )

    speedup = seed_seconds / serial_seconds
    emit_bench_json(
        "engine_batch",
        workload="pr1-attribution: academic+imdb+tpch, "
                 f"{max(1, epochs)}-epoch repeat traffic",
        speedup=round(speedup, 3),
        ops_per_sec={
            "attribution.instances_per_sec.engine": round(
                len(lineages) / serial_seconds, 1),
            "attribution.instances_per_sec.seed": round(
                len(lineages) / seed_seconds, 1),
        },
        metrics={
            "instances": len(lineages),
            "engine_serial_ms": round(serial_seconds * 1000, 1),
            "seed_serial_ms": round(seed_seconds * 1000, 1),
            "parallel_ms": round(parallel_seconds * 1000, 1),
            "cache_hit_rate": stats["hit_rate"],
        },
    )
    lines = [
        f"cpu cores:            {os.cpu_count()}",
        f"instances:            {len(lineages)} "
        f"({len(per_epoch)} distinct x {max(1, epochs)} epochs)",
        f"seed-serial:          {seed_seconds * 1000:8.1f} ms",
        f"engine-serial:        {serial_seconds * 1000:8.1f} ms  "
        f"({speedup:.2f}x vs seed)",
        f"engine-parallel (4):  {parallel_seconds * 1000:8.1f} ms",
        f"cache hits:           {stats['cache_hits']} / {len(lineages)} "
        f"(hit rate {stats['hit_rate']:.0%})",
        f"compilations:         {stats['compilations']}",
        f"stage seconds:        {stats['stage_seconds']}",
    ]
    return "\n".join(lines)


def test_engine_batch_speedup():
    report = run_benchmark()
    register_report("engine_batch_speedup", report)


if __name__ == "__main__":
    print(run_benchmark())
