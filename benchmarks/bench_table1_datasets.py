"""Table 1: statistics of the benchmark datasets (queries, lineages, sizes)."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table1_dataset_statistics


def test_table1_dataset_statistics(benchmark, workloads):
    rows = benchmark(table1_dataset_statistics, workloads)
    assert {row["dataset"] for row in rows} == {"academic", "imdb", "tpch"}
    for row in rows:
        assert row["lineages"] > 0
        assert row["max_vars"] >= row["avg_vars"]
        assert row["max_clauses"] >= row["avg_clauses"]
    register_report("table1_dataset_statistics", render_mapping_table(
        rows,
        ["dataset", "queries", "lineages", "avg_vars", "max_vars",
         "avg_clauses", "max_clauses"],
        title="Table 1: dataset statistics (synthetic stand-ins)"))
