"""Table 7: l1 error of AdaBan(0.1) and MC(50*#vars) against exact values."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table7_accuracy

_COLUMNS = ["dataset", "algorithm", "instances", "mean", "p50", "p75", "p90",
            "p95", "p99", "max"]


def test_table7_accuracy(benchmark, workload_results):
    rows = benchmark(table7_accuracy, workload_results)
    register_report("table7_accuracy",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 7: observed l1 error of "
                                               "the normalized value vectors"))
    by_key = {(row["dataset"], row["algorithm"]): row for row in rows}
    for dataset in ("academic", "imdb", "tpch", "hard"):
        adaban = by_key[(dataset, "adaban")]
        mc = by_key[(dataset, "mc")]
        if adaban["instances"] == 0 or mc["instances"] == 0:
            continue
        # The paper's claim: AdaBan's observed error is orders of magnitude
        # below MC's.  At minimum it must not be worse on any dataset.
        assert adaban["mean"] <= mc["mean"]
        assert adaban["p95"] <= mc["p95"]
    # And the gap is large in aggregate.
    overall_adaban = sum(by_key[(d, "adaban")]["mean"] for d in
                         ("academic", "imdb", "tpch"))
    overall_mc = sum(by_key[(d, "mc")]["mean"] for d in
                     ("academic", "imdb", "tpch"))
    assert overall_adaban * 5 < overall_mc
