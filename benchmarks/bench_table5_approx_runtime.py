"""Table 5: AdaBan(0.1) vs ExaBan vs MC runtime where ExaBan succeeds."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table5_approx_runtime

_COLUMNS = ["dataset", "algorithm", "instances", "mean", "p50", "p75", "p90",
            "p95", "p99", "max"]


def test_table5_approx_runtime(benchmark, workload_results):
    rows = benchmark(table5_approx_runtime, workload_results)
    register_report("table5_approx_runtime",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 5: approximate vs exact "
                                               "computation runtime"))
    by_key = {(row["dataset"], row["algorithm"]): row for row in rows}
    for dataset in ("academic", "imdb", "tpch"):
        assert by_key[(dataset, "exaban")]["instances"] > 0
        # Every algorithm row reports on the same success pool of ExaBan, so
        # the instance counts of AdaBan/MC cannot exceed ExaBan's.
        for algorithm in ("adaban", "mc"):
            assert (by_key[(dataset, algorithm)]["instances"]
                    <= by_key[(dataset, "exaban")]["instances"])
        # On the easy bulk of the workload (median instance) the anytime
        # algorithm is not slower than exact computation by more than a small
        # constant factor; see EXPERIMENTS.md for the discussion of where the
        # paper's larger speedups do and do not reproduce at this scale.
        assert (by_key[(dataset, "adaban")]["p50"]
                <= max(5 * by_key[(dataset, "exaban")]["p50"], 0.05))
