"""Compile-once benchmark: the shared compiled-lineage artifact tier.

The d-tree is the paper's central artifact — ExaBan, AdaBan, IchiBan and
the Shapley extension are all evaluators over the same compiled (or
partially compiled) d-tree — so a serving deployment that answers a
*cross-method* workload (attribute, then rank, then top-k, then Shapley
over the same lineages) should pay compilation **once per canonical
lineage**, not once per method.  This benchmark measures exactly that
against the seed behavior (compilation fused into each method's compute
path) and asserts the acceptance criteria of the artifact tier:

* **(a) second-method evaluations skip recompilation** — in the shared
  configuration, every method after the first reports
  ``tree_compilations == 0``; its computations are all artifact hits;
* **(b) a warm-started process resumes partial trees** — a budget-starved
  certain ranking persists its mid-refinement frontier; a fresh process
  over the same store directory reports ``artifact_resumes > 0`` and
  finishes with strictly less refinement work than a from-scratch run;
* **(c) bit-identical Fractions** — every value produced off the shared
  artifact equals (``Fraction`` equality, type included) the value a
  cold per-method engine computes for itself.

Environment knobs: ``REPRO_BENCH_SMOKE=1`` trims the workload for CI.
Runs standalone (``python benchmarks/bench_compile_reuse.py``) or under
pytest with the benchmark harness (the report lands in
``benchmarks/results/compile_reuse.txt``).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import replace
from fractions import Fraction
from typing import Dict, List

from conftest import emit_bench_json, register_report

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.engine import DiskStore, Engine, EngineConfig
from repro.workloads.suite import default_workloads

#: The cross-method request mix, in arrival order: attribution compiles,
#: everything after evaluates.
METHODS = ("exact", "shapley", "rank", "topk")


def _method_config(method: str, store=None) -> EngineConfig:
    return EngineConfig(
        method=method,
        epsilon=None if method in ("rank", "topk") else 0.1,
        k=3 if method == "topk" else None,
        store=store,
    )


def _workload_lineages(smoke: bool) -> List[DNF]:
    lineages = [
        instance.lineage
        for workload in default_workloads(include_hard=False)
        for instance in workload.instances
        # Shapley's size-indexed vectors are the heaviest evaluator;
        # keep the benchmark snappy on 1-CPU CI runners.
        if instance.lineage.num_variables() <= 14
    ]
    return lineages[:20] if smoke else lineages


def _run_method(engine: Engine, lineages: List[DNF]):
    started = time.monotonic()
    attributions = engine.attribute_lineages(lineages)
    return time.monotonic() - started, attributions


def _occurring_values(attribution) -> Dict[int, Fraction]:
    return dict(attribution.values)


def run_benchmark() -> str:
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    lineages = _workload_lineages(smoke)

    # ---- baseline: per-method recompilation (the seed behavior) ------ #
    baseline_seconds: Dict[str, float] = {}
    baseline_results: Dict[str, List] = {}
    baseline_compiles = 0
    for method in METHODS:
        engine = Engine(_method_config(method))
        baseline_seconds[method], baseline_results[method] = _run_method(
            engine, lineages)
        baseline_compiles += engine.stats.tree_compilations

    # ---- shared artifact tier: compile once, evaluate per method ----- #
    shared_seconds: Dict[str, float] = {}
    shared_results: Dict[str, List] = {}
    shared_engines: Dict[str, Engine] = {}
    with tempfile.TemporaryDirectory() as directory:
        store = DiskStore(directory)
        cache = None
        for method in METHODS:
            engine = Engine(_method_config(method, store=store))
            if cache is None:
                cache = engine.cache
            engine.cache = cache
            shared_engines[method] = engine
            shared_seconds[method], shared_results[method] = _run_method(
                engine, lineages)

        # (a) every method after the first evaluates off the shared
        # artifact: zero fresh tree builds, all computations artifact hits.
        for method in METHODS[1:]:
            stats = shared_engines[method].stats
            assert stats.tree_compilations == 0, (
                f"{method} recompiled {stats.tree_compilations} trees "
                "despite the shared artifact tier"
            )
            assert stats.artifact_hits == stats.compilations > 0

        # (c) bit-identical Fractions against the cold per-method runs.
        exact_baseline = baseline_results["exact"]
        for method in METHODS:
            for shared, cold, exact in zip(shared_results[method],
                                           baseline_results[method],
                                           exact_baseline):
                if method in ("exact", "shapley"):
                    assert shared.values == cold.values
                    reference = cold.values
                else:
                    # Off a complete artifact the ranking methods return
                    # the exact Banzhaf values (occurring variables).
                    assert shared.method_used == "exact"
                    reference = {v: exact.values[v]
                                 for v in shared.values}
                for variable, value in _occurring_values(shared).items():
                    assert isinstance(value, Fraction)
                    assert value == reference[variable]

        shared_compiles = sum(e.stats.tree_compilations
                              for e in shared_engines.values())
        distinct = shared_engines["exact"].stats.compilations
        assert shared_compiles == distinct, (
            f"expected one compilation per distinct lineage ({distinct}), "
            f"got {shared_compiles}"
        )

    # ---- warm restart: resume persisted partial trees ---------------- #
    # Budget-starved certain rankings over cycle lineages (every variable
    # symmetric: separation needs deep expansion) leave partial frontiers
    # in the store; the warm process must resume, not restart.
    hard = [DNF([[i, (i + 1) % n] for i in range(n)])
            for n in (8, 9, 10)]
    exact_hard = [banzhaf_all_brute_force(function) for function in hard]
    with tempfile.TemporaryDirectory() as directory:
        starved = Engine(replace(_method_config("rank"),
                                 max_shannon_steps=30,
                                 store=DiskStore(directory)))
        starved.attribute_lineages(hard)
        starved_partials = starved.stats.partial_results
        assert starved_partials > 0, (
            "the starved pass must leave unconverged rankings behind"
        )

        warm = Engine(_method_config("rank", store=DiskStore(directory)))
        warm_started = time.monotonic()
        warm_results = warm.attribute_lineages(hard)
        warm_seconds = time.monotonic() - warm_started
        assert warm.stats.artifact_resumes > 0, (
            "the warm process must resume persisted partial trees"
        )
        assert warm.stats.tree_compilations == 0

    scratch = Engine(_method_config("rank"))
    scratch_started = time.monotonic()
    scratch_results = scratch.attribute_lineages(hard)
    scratch_seconds = time.monotonic() - scratch_started

    # (b) resuming beats restarting: strictly less refinement work.
    assert warm.stats.refinement_rounds < scratch.stats.refinement_rounds, (
        f"resumed refinement ({warm.stats.refinement_rounds} rounds) "
        f"should undercut from-scratch ({scratch.stats.refinement_rounds})"
    )
    # Soundness: both runs' certified intervals contain the exact values.
    for results in (warm_results, scratch_results):
        for attribution, exact in zip(results, exact_hard):
            for variable, (lower, upper) in attribution.bounds.items():
                assert lower <= exact[variable] <= upper

    baseline_total = sum(baseline_seconds.values())
    shared_total = sum(shared_seconds.values())
    assert shared_total < baseline_total, (
        f"shared-artifact workload ({shared_total:.3f}s) should beat "
        f"per-method recompilation ({baseline_total:.3f}s)"
    )

    speedup = baseline_total / shared_total
    emit_bench_json(
        "compile_reuse",
        workload="pr1 cross-method traffic "
                 f"({' -> '.join(METHODS)}), shared artifact tier vs "
                 "per-method recompilation",
        speedup=round(speedup, 3),
        ops_per_sec={
            "requests.instances_per_sec.shared": round(
                len(METHODS) * len(lineages) / shared_total, 1),
            "requests.instances_per_sec.recompile": round(
                len(METHODS) * len(lineages) / baseline_total, 1),
        },
        metrics={
            "lineages_per_method": len(lineages),
            "shared_total_ms": round(shared_total * 1000, 1),
            "baseline_total_ms": round(baseline_total * 1000, 1),
            "baseline_tree_compilations": baseline_compiles,
            "warm_resume_rounds": warm.stats.refinement_rounds,
            "scratch_rounds": scratch.stats.refinement_rounds,
        },
    )
    lines = [
        f"lineages per method:     {len(lineages)} "
        f"({shared_engines['exact'].stats.compilations} distinct canonical)",
        f"request mix:             {' -> '.join(METHODS)}",
        "",
        "per-method recompilation (seed behavior):",
    ]
    for method in METHODS:
        lines.append(f"  {method:<8} {baseline_seconds[method] * 1000:8.1f} ms")
    lines += [f"  total    {baseline_total * 1000:8.1f} ms  "
              f"({baseline_compiles} tree compilations)",
              "",
              "shared compiled-lineage artifact tier:"]
    for method in METHODS:
        stats = shared_engines[method].stats
        lines.append(
            f"  {method:<8} {shared_seconds[method] * 1000:8.1f} ms  "
            f"(trees built {stats.tree_compilations}, artifact hits "
            f"{stats.artifact_hits + stats.artifact_store_hits})")
    lines += [
        f"  total    {shared_total * 1000:8.1f} ms  ({speedup:.2f}x, "
        "one compilation per distinct lineage)",
        "",
        "warm-restart resume (certain ranking, step-starved cold pass):",
        f"  cold partials persisted: {starved_partials} "
        f"(rounds {starved.stats.refinement_rounds})",
        f"  warm resumed:            rounds "
        f"{warm.stats.refinement_rounds}, resumes "
        f"{warm.stats.artifact_resumes}, {warm_seconds * 1000:.1f} ms",
        f"  from scratch:            rounds "
        f"{scratch.stats.refinement_rounds}, "
        f"{scratch_seconds * 1000:.1f} ms",
        "",
        "exactness: every shared-artifact value bit-identical to the "
        "cold per-method computation (Fraction equality)",
    ]
    return "\n".join(lines)


def test_compile_reuse():
    report = run_benchmark()
    register_report("compile_reuse", report)


if __name__ == "__main__":
    print(run_benchmark())
