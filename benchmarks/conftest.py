"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's tables and figures.  The expensive part
-- running every algorithm on every instance of every workload -- is done
once per session and shared; the individual benchmark targets derive their
table from the shared results, assert the qualitative claims of the paper,
render the table, and register it so that it is printed in the terminal
summary (and written to ``benchmarks/results/``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.runner import ExperimentConfig, run_workloads
from repro.workloads.suite import default_workloads

#: Per-instance budget (the paper uses one hour on a large server; the
#: synthetic workloads here use seconds).
TIMEOUT_SECONDS = float(os.environ.get("REPRO_BENCH_TIMEOUT", "1.5"))

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

_REPORTS: List[str] = []


def register_report(name: str, text: str) -> None:
    """Record a rendered table/series for the terminal summary and results dir."""
    _REPORTS.append(f"==== {name} ====\n{text}\n")
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


#: Schema version of the machine-readable benchmark summaries below.  Bump
#: on any incompatible change; CI consumers key on it.
BENCH_JSON_SCHEMA = 1


def _environment_stamp() -> Dict[str, object]:
    """Python/numpy versions and CPU count, stamped into every summary.

    Perf numbers are only comparable across runs with the environment
    attached: a kernel-tier speedup measured with numpy 1.x on 2 cores
    is a different data point than one with numpy 2.x on 64.  numpy is
    optional, so its version is ``None`` when absent.
    """
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def emit_bench_json(name: str, *, workload: str,
                    speedup: Optional[float] = None,
                    ops_per_sec: Optional[Dict[str, float]] = None,
                    metrics: Optional[Dict[str, object]] = None) -> str:
    """Write a standardized ``BENCH_<name>.json`` summary.

    Every benchmark emits the same envelope -- ``bench``, ``schema_version``,
    ``created_unix``, ``workload``, ``speedup``, ``ops_per_sec``,
    ``metrics``, ``environment`` (python/numpy versions, CPU count) --
    into ``benchmarks/results/``, where CI uploads them as artifacts, so
    the perf trajectory across PRs is machine-readable *and comparable*
    from one glob (``BENCH_*.json``).  Returns the path written.
    """
    payload = {
        "bench": name,
        "schema_version": BENCH_JSON_SCHEMA,
        "created_unix": int(time.time()),
        "workload": workload,
        "speedup": speedup,
        "ops_per_sec": ops_per_sec or {},
        "metrics": metrics or {},
        "environment": _environment_stamp(),
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every registered table so the tee'd output contains them."""
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("================ reproduced tables and figures ================")
    for report in _REPORTS:
        for line in report.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The evaluation protocol configuration used by all benchmarks."""
    return ExperimentConfig(timeout_seconds=TIMEOUT_SECONDS)


@pytest.fixture(scope="session")
def workloads():
    """The three synthetic workloads (Academic, IMDB, TPC-H stand-ins)."""
    return default_workloads()


@pytest.fixture(scope="session")
def workload_results(workloads, config) -> Dict:
    """One shared run of every algorithm on every instance."""
    return run_workloads(workloads, ["exaban", "sig22", "adaban", "mc"], config)
