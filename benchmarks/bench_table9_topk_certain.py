"""Table 9 (Appendix E): runtime and success rate of certain top-k."""

import pytest
from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table9_topk_certain

_COLUMNS = ["dataset", "k", "success_rate", "mean", "p50", "p90", "p95", "max"]


@pytest.fixture(scope="module")
def topk_rows(workloads, config):
    return table9_topk_certain(workloads, config, k_values=(1, 3, 5, 10))


def test_table9_topk_certain(benchmark, topk_rows):
    rows = benchmark(lambda: topk_rows)
    register_report("table9_topk_certain",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 9: certain top-k "
                                               "computation"))
    by_key = {(row["dataset"], row["k"]): row for row in rows}
    for dataset in ("academic", "imdb", "tpch"):
        # Top-1 is the easy case in the paper (a clear winner exists in most
        # lineages): it should have the highest success rate of all k.
        top1 = by_key[(dataset, 1)]
        assert top1["success_rate"] >= 0.5
        for k in (3, 5, 10):
            assert by_key[(dataset, k)]["success_rate"] <= 1.0
