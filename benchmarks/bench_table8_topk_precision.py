"""Table 8: precision@k of IchiBan(0.1), MC and CNF Proxy per dataset."""

import pytest
from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table8_topk_precision

_COLUMNS = ["dataset", "algorithm", "precision@10_mean", "precision@10_min",
            "precision@5_mean", "precision@5_min"]


@pytest.fixture(scope="module")
def precision_rows(workloads, config):
    return table8_topk_precision(workloads, config, k_values=(10, 5))


def test_table8_topk_precision(benchmark, precision_rows):
    rows = benchmark(lambda: precision_rows)
    register_report("table8_topk_precision",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 8: precision@10 / "
                                               "precision@5"))
    by_key = {(row["dataset"], row["algorithm"]): row for row in rows}
    for dataset in ("academic", "imdb", "tpch"):
        ichiban = by_key[(dataset, "ichiban")]
        mc = by_key[(dataset, "mc")]
        for column in ("precision@10_mean", "precision@5_mean"):
            if ichiban[column] != ichiban[column]:  # NaN: no instance scored
                continue
            # IchiBan achieves near-perfect precision and is never worse
            # than the MC baseline (the paper's Table 8 claim).
            assert ichiban[column] >= 0.9
            if mc[column] == mc[column]:
                assert ichiban[column] >= mc[column] - 1e-9
