"""Ablation: effect of the Shannon-variable selection heuristic.

The paper (Section 3.1) uses the most-frequent-variable heuristic and notes
that other choices are possible.  This ablation compares the number of
Shannon expansions (the exponential-cost step) incurred by the three
heuristics shipped with the library on the hard benchmark lineages.
"""

import pytest
from conftest import register_report

from repro.dtree.compile import CompilationBudget, CompilationLimitReached, compile_dnf
from repro.dtree.heuristics import HEURISTICS
from repro.experiments.report import render_table
from repro.workloads.suite import hard_instances


@pytest.fixture(scope="module")
def heuristic_counts(workloads):
    rows = []
    for instance in hard_instances(workloads):
        if instance.num_variables > 40:
            continue
        row = [instance.label(), instance.num_variables]
        for name, heuristic in sorted(HEURISTICS.items()):
            budget = CompilationBudget(max_shannon_steps=40_000,
                                       timeout_seconds=5.0)
            try:
                compile_dnf(instance.lineage, heuristic=heuristic, budget=budget)
                row.append(budget.shannon_steps)
            except CompilationLimitReached:
                row.append(None)
        rows.append(row)
    return rows


def test_ablation_shannon_heuristics(benchmark, heuristic_counts):
    assert heuristic_counts
    benchmark(lambda: heuristic_counts)
    names = sorted(HEURISTICS)
    register_report("ablation_heuristics", render_table(
        ["instance", "vars"] + [f"shannon[{n}]" for n in names],
        heuristic_counts,
        title="Ablation: Shannon expansions per heuristic"))
    # The naive 'first' heuristic should never beat 'most_frequent' by a
    # large margin, and on at least one instance the informed heuristics
    # strictly win.
    first_index = 2 + names.index("first")
    frequent_index = 2 + names.index("most_frequent")
    wins = 0
    for row in heuristic_counts:
        first_steps, frequent_steps = row[first_index], row[frequent_index]
        if first_steps is None:
            wins += 1
            continue
        if frequent_steps is not None and frequent_steps < first_steps:
            wins += 1
    assert wins >= 1
