"""Table 4: ExaBan's success rate and runtime on instances where Sig22 fails."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table4_exaban_when_sig22_fails

_COLUMNS = ["dataset", "sig22_failures", "exaban_success_rate", "mean", "p50",
            "p90", "max"]


def test_table4_exaban_when_sig22_fails(benchmark, workload_results):
    rows = benchmark(table4_exaban_when_sig22_fails, workload_results)
    register_report("table4_exaban_when_sig22_fails",
                    render_mapping_table(rows, _COLUMNS,
                                         title="Table 4: ExaBan where Sig22 "
                                               "fails"))
    total_failures = sum(row["sig22_failures"] for row in rows)
    # The workloads contain instances that defeat the CNF-based baseline.
    assert total_failures > 0
    recovered = [row["exaban_success_rate"] for row in rows
                 if row["sig22_failures"] > 0]
    # ExaBan recovers a substantial fraction of Sig22's failures (the paper
    # reports 41.7%-99.2% across datasets).
    assert max(recovered) > 0.4
