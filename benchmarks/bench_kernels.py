"""Kernel-tier benchmark: vectorized numpy passes vs the Python arena passes.

This PR added a vectorized kernel tier (:mod:`repro.dtree.kernels`) that
evaluates the fused arena passes as whole-level numpy operations, plus a
cross-request batcher that stacks many small arenas into one fused column
block.  This benchmark proves the two headline claims:

* **batched float tier** -- a micro-batch of 24 star-join lineages (the
  tie-rich ranking traffic the serving front-end coalesces): one stacked
  :func:`~repro.dtree.kernels.prewarm_arenas` sweep against per-arena
  :func:`~repro.dtree.arena.arena_float_counts` +
  :func:`~repro.dtree.arena.arena_float_banzhaf` Python passes.  Asserts
  the certified enclosures still contain the exact Banzhaf values and a
  >= 3x wall-clock win;
* **single-tree exact tier** -- deep-but-int64-eligible synthetic XOR
  trees evaluated one at a time: the kernel's int64 fast path
  (:func:`~repro.dtree.kernels.banzhaf_pass`, one fused sweep scattering
  counts and scores) against the Python
  :func:`~repro.dtree.arena.arena_counts` +
  :func:`~repro.dtree.arena.arena_banzhaf` pair.  Asserts bit-identical
  integer results and a >= 1.5x win.

Level schedules (the cached kernel plans) are built once outside the
timed region -- that is how the engine pays for them: the plan survives
memo clears and every later evaluation reuses it.

Environment knobs: ``REPRO_BENCH_SMOKE=1`` shrinks the batch and round
count to the CI smoke configuration.  Without numpy the benchmark skips
(standalone: prints a notice and exits 0) -- the kernel tier is an
optional dependency (``pip install repro[fast]``).

Runs standalone (``python benchmarks/bench_kernels.py``) or under pytest
with the rest of the benchmark harness.  Emits ``BENCH_kernels.json``.
"""

from __future__ import annotations

import gc
import os
import random
import time
from contextlib import contextmanager
from typing import Dict, List, Sequence, Tuple

import pytest

from conftest import emit_bench_json, register_report

from repro.dtree.arena import (
    DTreeArena,
    arena_banzhaf,
    arena_counts,
    arena_float_banzhaf,
    arena_float_counts,
    pow2_int,
)
from repro.dtree.compile import compile_dnf
from repro.dtree.kernels import (
    HAVE_NUMPY,
    _PLAN_KEY,
    banzhaf_pass,
    plan_of,
    prewarm_arenas,
)
from repro.dtree.nodes import DecompAnd, ExclusiveOr, LiteralLeaf
from repro.engine.ranking import uncertified_enclosure
from repro.workloads.generators import star_join_lineage

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Micro-batch size for the batched float workload (PR-6's front-end
#: coalesces requests into batches of this order).  Smoke keeps the full
#: batch -- shrinking it would leave the fixed per-sweep stacking cost
#: unamortized and benchmark a different regime; smoke cuts rounds and
#: the exact workload instead.
BATCH_TREES = 24

#: Star-join shape for the batched workload: (hubs, satellites_per_hub).
#: Large enough that the whole-level blocks amortize the per-sweep
#: stacking cost -- tiny trees are auto-gated to the Python pass anyway
#: (``AUTO_MIN_ROWS``/``AUTO_MIN_WIDTH``), so benchmarking them would
#: measure a path production never takes.
BATCH_SHAPE = (12, 10)

#: Timing rounds; each side keeps its best (min) round.
ROUNDS = 2 if _SMOKE else 5

#: ULP margin used when materializing the float tier's enclosures
#: (mirrors ``EngineConfig.float_ulp_margin``'s default).
FLOAT_ULP_MARGIN = 8


@contextmanager
def _quiesced_gc():
    """No generational collections inside a timed region.

    Both benchmark sides keep every arena of both workloads alive, so a
    gen-2 collection landing mid-pass walks the whole heap and adds tens
    of milliseconds to whichever side it hits -- on these
    sub-100-millisecond measurements that is the dominant noise source.
    """
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _clear_memos(arena: DTreeArena) -> None:
    """Make every pass cold again, preserving the cached level schedule."""
    plan = arena.results.pop(_PLAN_KEY, None)
    arena.results.clear()
    arena.payloads.clear()
    if plan is not None:
        arena.results[_PLAN_KEY] = plan


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #


def _xor_tree(rng: random.Random, variables: Sequence[int],
              fanout: int = 3, leaf_width: int = 6) -> DecompAnd:
    """A deep synthetic d-tree that stays inside the int64 envelope.

    Exclusive-or children must share the parent domain, so each child is
    an independent-AND of two subtrees over a *different shuffled
    partition* of the same variable set; leaves are small literal
    conjunctions (30% negated).  Unlike large random DNFs -- whose exact
    compilation blows up -- this builds a big compiled-shape tree
    directly, which is what the kernel sweeps.
    """
    variables = list(variables)
    if len(variables) <= leaf_width:
        return DecompAnd([LiteralLeaf(v, negated=(rng.random() < 0.3))
                          for v in variables])
    children = []
    for _ in range(fanout):
        shuffled = list(variables)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2
        children.append(DecompAnd([
            _xor_tree(rng, shuffled[:half], fanout, leaf_width),
            _xor_tree(rng, shuffled[half:], fanout, leaf_width),
        ]))
    return ExclusiveOr(children)


def _exact_trees() -> List[DTreeArena]:
    """Single-tree exact workload: int64-eligible synthetic XOR trees."""
    sizes = (40, 48, 56) if _SMOKE else (40, 44, 48, 52, 56)
    arenas = []
    for position, num_variables in enumerate(sizes):
        rng = random.Random(7000 + position)
        tree = _xor_tree(rng, range(num_variables))
        arena = DTreeArena.from_tree(tree)
        # The whole point is the int64 fast path; a tree that falls out
        # of the envelope would silently benchmark python vs python.
        assert plan_of(arena).int64_ok, (
            f"xor_tree({num_variables}) left the int64 envelope")
        arenas.append(arena)
    return arenas


def _batched_arenas() -> List[DTreeArena]:
    """Batched float workload: a micro-batch of star-join lineages."""
    hubs, satellites = BATCH_SHAPE
    arenas = []
    for position in range(BATCH_TREES):
        rng = random.Random(9000 + position)
        root = compile_dnf(star_join_lineage(rng, hubs, satellites))
        arenas.append(DTreeArena.from_tree(root))
    return arenas


# --------------------------------------------------------------------- #
# Timed passes
# --------------------------------------------------------------------- #


def _python_float_pass(arenas: List[DTreeArena]) -> Tuple[list, float]:
    """Per-arena Python float count + Banzhaf passes, cold."""
    for arena in arenas:
        _clear_memos(arena)
    results = []
    with _quiesced_gc():
        started = time.monotonic()
        for arena in arenas:
            logs, errs = arena_float_counts(arena)
            scores = arena_float_banzhaf(arena)
            results.append((logs[arena.root], errs[arena.root],
                            dict(scores)))
        elapsed = time.monotonic() - started
    return results, elapsed


def _numpy_float_batch(arenas: List[DTreeArena]) -> Tuple[list, float]:
    """One stacked kernel sweep over the whole batch, then memo reads."""
    for arena in arenas:
        _clear_memos(arena)
    results = []
    with _quiesced_gc():
        started = time.monotonic()
        swept = prewarm_arenas(arenas, tier="float", kernel="numpy")
        for arena in arenas:
            logs, errs = arena_float_counts(arena)  # memo hit
            scores = arena_float_banzhaf(arena)  # memo hit
            results.append((logs[arena.root], errs[arena.root],
                            dict(scores)))
        elapsed = time.monotonic() - started
    assert swept == len(arenas), (
        f"batched sweep covered {swept}/{len(arenas)} arenas")
    return results, elapsed


def _python_exact_pass(arenas: List[DTreeArena]) -> Tuple[list, float]:
    """Per-tree Python fused count + Banzhaf passes, cold."""
    for arena in arenas:
        _clear_memos(arena)
    results = []
    with _quiesced_gc():
        started = time.monotonic()
        for arena in arenas:
            counts = arena_counts(arena)
            scores = arena_banzhaf(arena)
            results.append((counts[arena.root], dict(scores)))
        elapsed = time.monotonic() - started
    return results, elapsed


def _numpy_exact_pass(arenas: List[DTreeArena]) -> Tuple[list, float]:
    """Per-tree int64 kernel sweeps (counts scatter from the same sweep)."""
    for arena in arenas:
        _clear_memos(arena)
    results = []
    with _quiesced_gc():
        started = time.monotonic()
        for arena in arenas:
            scores = banzhaf_pass(arena, kernel="numpy")
            counts = arena_counts(arena)  # memo: the sweep scattered it
            results.append((counts[arena.root], dict(scores)))
        elapsed = time.monotonic() - started
    return results, elapsed


# --------------------------------------------------------------------- #
# Soundness checks (outside the timed rounds)
# --------------------------------------------------------------------- #


def _assert_float_enclosures(arenas: List[DTreeArena], floats: list) -> None:
    """Certified enclosures from the batched sweep contain the exact values."""
    for arena, (_, _, scores) in zip(arenas, floats):
        reference = DTreeArena.from_tree(arena.nodes[arena.root])
        exact = arena_banzhaf(reference)
        for variable, (log, err) in scores.items():
            point = exact[variable]
            if log == float("-inf"):
                assert point == 0, f"variable {variable}: zero score mismatch"
                continue
            if uncertified_enclosure(log, err, FLOAT_ULP_MARGIN):
                continue  # vacuous bound; the ranking tier falls back
            lower = pow2_int(log, FLOAT_ULP_MARGIN * err)
            upper = pow2_int(log, FLOAT_ULP_MARGIN * err, ceil=True)
            assert lower <= point <= upper, (
                f"variable {variable}: enclosure [{lower}, {upper}] "
                f"misses exact {point}")


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def _measure(batch_arenas: List[DTreeArena],
             exact_arenas: List[DTreeArena]
             ) -> Tuple[float, float, float, float, list]:
    """Best-of-``ROUNDS`` wall clock for all four sides, one batch."""
    python_float = numpy_float = float("inf")
    python_exact = numpy_exact = float("inf")
    np_floats: list = []
    for _ in range(ROUNDS):
        py_floats, elapsed = _python_float_pass(batch_arenas)
        python_float = min(python_float, elapsed)
        np_floats, elapsed = _numpy_float_batch(batch_arenas)
        numpy_float = min(numpy_float, elapsed)

        py_exacts, elapsed = _python_exact_pass(exact_arenas)
        python_exact = min(python_exact, elapsed)
        np_exacts, elapsed = _numpy_exact_pass(exact_arenas)
        numpy_exact = min(numpy_exact, elapsed)

        # Exact tier: bit-identical ints, tree by tree, variable by
        # variable.  (Float columns are compared through their enclosure
        # contract below, not bit equality.)
        assert py_exacts == np_exacts, (
            "int64 kernel sweep diverged from the Python arena passes")
    return python_float, numpy_float, python_exact, numpy_exact, np_floats


def run_benchmark() -> str:
    exact_arenas = _exact_trees()
    batch_arenas = _batched_arenas()
    # Build every level schedule once, outside the timed region.
    for arena in exact_arenas + batch_arenas:
        plan_of(arena)

    (python_float, numpy_float,
     python_exact, numpy_exact, np_floats) = _measure(batch_arenas,
                                                      exact_arenas)
    if python_float / numpy_float < 3.0 or python_exact / numpy_exact < 1.5:
        # A noisy-neighbor round on a shared runner can depress either
        # ratio; one re-measurement (merged best-of) before asserting
        # keeps the gates honest without flaking CI.
        retry = _measure(batch_arenas, exact_arenas)
        python_float = min(python_float, retry[0])
        numpy_float = min(numpy_float, retry[1])
        python_exact = min(python_exact, retry[2])
        numpy_exact = min(numpy_exact, retry[3])

    _assert_float_enclosures(batch_arenas, np_floats)

    batched_speedup = python_float / numpy_float
    exact_speedup = python_exact / numpy_exact
    assert batched_speedup >= 3.0, (
        f"expected >= 3x batched float count+Banzhaf throughput, measured "
        f"{batched_speedup:.2f}x ({numpy_float * 1000:.0f}ms vs "
        f"{python_float * 1000:.0f}ms)")
    assert exact_speedup >= 1.5, (
        f"expected >= 1.5x single-tree int64 exact throughput, measured "
        f"{exact_speedup:.2f}x ({numpy_exact * 1000:.0f}ms vs "
        f"{python_exact * 1000:.0f}ms)")

    exact_rows = sum(len(arena.kinds) for arena in exact_arenas)
    batch_rows = sum(len(arena.kinds) for arena in batch_arenas)
    ops: Dict[str, float] = {
        "batched_float.trees_per_sec.numpy": round(
            len(batch_arenas) / numpy_float, 1),
        "batched_float.trees_per_sec.python": round(
            len(batch_arenas) / python_float, 1),
        "single_exact.trees_per_sec.numpy": round(
            len(exact_arenas) / numpy_exact, 1),
        "single_exact.trees_per_sec.python": round(
            len(exact_arenas) / python_exact, 1),
    }
    workload_label = (
        f"batched float: {len(batch_arenas)} star-join {BATCH_SHAPE} "
        f"arenas, one "
        f"stacked sweep; single exact: {len(exact_arenas)} int64-eligible "
        f"xor trees, fused count+banzhaf per tree")
    emit_bench_json(
        "kernels",
        workload=workload_label,
        speedup=round(batched_speedup, 3),
        ops_per_sec=ops,
        metrics={
            "batched_float_speedup": round(batched_speedup, 3),
            "single_exact_speedup": round(exact_speedup, 3),
            "batch_trees": len(batch_arenas),
            "batch_rows": batch_rows,
            "exact_trees": len(exact_arenas),
            "exact_rows": exact_rows,
            "rounds": ROUNDS,
            "smoke": _SMOKE,
        },
    )

    lines = [
        f"workload:             {workload_label}",
        f"batched float python: {python_float * 1000:8.1f} ms",
        f"batched float numpy:  {numpy_float * 1000:8.1f} ms "
        f"({len(batch_arenas) / numpy_float:.0f} trees/s)",
        f"batched speedup:      {batched_speedup:.2f}x (assert >= 3.0x, "
        f"enclosures contain exact Banzhaf values)",
        f"single exact python:  {python_exact * 1000:8.1f} ms",
        f"single exact numpy:   {numpy_exact * 1000:8.1f} ms "
        f"({exact_rows / numpy_exact:.0f} rows/s)",
        f"single exact speedup: {exact_speedup:.2f}x (assert >= 1.5x, "
        f"bit-identical counts + Banzhaf ints)",
    ]
    return "\n".join(lines)


def test_kernels_speedup():
    if not HAVE_NUMPY:
        pytest.skip("numpy not installed; kernel tier falls back to python")
    register_report("kernels_speedup", run_benchmark())


if __name__ == "__main__":
    if not HAVE_NUMPY:
        print("numpy not installed; kernel-tier benchmark skipped")
    else:
        print(run_benchmark())
