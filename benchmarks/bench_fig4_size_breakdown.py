"""Figure 4: ExaBan success rate and runtime grouped by lineage size."""

from conftest import register_report

from repro.experiments.figures import figure4_size_breakdown
from repro.experiments.report import render_table


def _exaban_results(workload_results):
    results = []
    for (_, algorithm), batch in workload_results.items():
        if algorithm == "exaban":
            results.extend(batch)
    return results


def test_fig4_success_and_time_by_size(benchmark, workload_results):
    results = _exaban_results(workload_results)
    by_vars = benchmark(figure4_size_breakdown, results, "variables")
    by_clauses = figure4_size_breakdown(results, group_by="clauses")

    def rows(bins):
        return [[b.label(), b.instances, b.success_rate, b.min_seconds,
                 b.max_seconds] for b in bins]

    headers = ["bin", "instances", "success_rate", "min_s", "max_s"]
    register_report("fig4_by_variables",
                    render_table(headers, rows(by_vars),
                                 title="Figure 4a: ExaBan grouped by #variables"))
    register_report("fig4_by_clauses",
                    render_table(headers, rows(by_clauses),
                                 title="Figure 4b: ExaBan grouped by #clauses"))

    assert by_vars and by_clauses
    # The paper's shape: success is perfect on the smallest bin and
    # non-increasing pressure as lineages grow (allowing small noise, the
    # largest populated bin is never better than the smallest).
    assert by_vars[0].success_rate == 1.0
    assert by_vars[-1].success_rate <= by_vars[0].success_rate
    assert by_clauses[0].success_rate == 1.0
    assert by_clauses[-1].success_rate <= by_clauses[0].success_rate
