"""Table 2: query and lineage success rates of all algorithms per dataset."""

from conftest import register_report

from repro.experiments.report import render_mapping_table
from repro.experiments.tables import table2_success_rates

_ALGORITHMS = ["exaban", "sig22", "adaban", "mc"]


def test_table2_success_rates(benchmark, workload_results):
    rows = benchmark(table2_success_rates, workload_results, _ALGORITHMS)
    register_report("table2_success_rates", render_mapping_table(
        rows, ["dataset", "algorithm", "query_success_rate",
               "lineage_success_rate"],
        title="Table 2: success rates"))

    by_key = {(row["dataset"], row["algorithm"]): row for row in rows}
    for dataset in ("academic", "imdb", "tpch"):
        exaban = by_key[(dataset, "exaban")]
        sig22 = by_key[(dataset, "sig22")]
        # The paper's headline claim: ExaBan's success rate dominates Sig22's.
        assert (exaban["lineage_success_rate"]
                >= sig22["lineage_success_rate"])
        assert exaban["query_success_rate"] >= sig22["query_success_rate"]
