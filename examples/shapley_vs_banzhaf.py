"""Appendix D live: Banzhaf-based and Shapley-based rankings can disagree.

Reconstructs the 18-fact database of the paper's Appendix D, computes the
per-size critical-set counts of the two competing facts R(a1) and R(a2), and
shows that the Banzhaf ranking prefers R(a1) while the Shapley ranking
prefers R(a2).

Run with::

    python examples/shapley_vs_banzhaf.py
"""

from repro.core.shapley import (
    banzhaf_from_critical_counts,
    critical_counts_exact,
    shapley_from_critical_counts,
)
from repro.db.lineage import lineage_of_boolean_query
from repro.db.reductions import appendix_d_database, appendix_d_query


def main() -> None:
    database, r_a1, r_a2 = appendix_d_database()
    query = appendix_d_query()
    lineage = lineage_of_boolean_query(query, database, domain="database")

    counts = {
        "R(a1)": critical_counts_exact(lineage, database.variable_of(r_a1)),
        "R(a2)": critical_counts_exact(lineage, database.variable_of(r_a2)),
    }

    print(f"Query: {query}")
    print(f"Database: {database}")
    print()
    print(f"{'k':>3}  {'#kC(R(a1))':>12}  {'#kC(R(a2))':>12}")
    for k, (count_a1, count_a2) in enumerate(zip(counts["R(a1)"],
                                                 counts["R(a2)"])):
        print(f"{k:>3}  {count_a1:>12}  {count_a2:>12}")

    n = lineage.num_variables()
    banzhaf = {fact: banzhaf_from_critical_counts(c) for fact, c in counts.items()}
    shapley = {fact: shapley_from_critical_counts(c, n) for fact, c in counts.items()}
    print()
    print(f"Banzhaf : R(a1) = {banzhaf['R(a1)']}, R(a2) = {banzhaf['R(a2)']}"
          f"  ->  prefers {'R(a1)' if banzhaf['R(a1)'] > banzhaf['R(a2)'] else 'R(a2)'}")
    print(f"Shapley : R(a1) = {float(shapley['R(a1)']):.4f}, "
          f"R(a2) = {float(shapley['R(a2)']):.4f}"
          f"  ->  prefers {'R(a1)' if shapley['R(a1)'] > shapley['R(a2)'] else 'R(a2)'}")
    print()
    print("Same database, same query, opposite rankings: the Shapley value's")
    print("size-dependent coefficients weigh the mid-size critical sets of R(a2)")
    print("more heavily than the raw count that the Banzhaf value uses.")


if __name__ == "__main__":
    main()
