"""Ranking, top-k, and the tractability frontier of the dichotomy.

Part 1 ranks the facts of an Academic-workload answer with IchiBan, showing
the certified intervals that justify the order.

Part 2 exercises the hardness construction of the dichotomy (Theorem 17):
it takes a small bipartite graph, builds the Lemma 23 database whose lineage
under the non-hierarchical query Q_nh encodes the graph, and verifies that
the number of independent sets of the graph (#BIS) equals the number of
non-satisfying assignments of the lineage (#NSat) -- the quantity a
polynomial-time ranking oracle would let us approximate.

Run with::

    python examples/ranking_and_dichotomy.py
"""

from repro.boolean.assignments import count_non_models
from repro.boolean.pp2dnf import BipartiteGraph, graph_to_pp2dnf
from repro.core.attribution import rank_facts
from repro.db.hierarchy import classify_query
from repro.db.lineage import lineage_of_boolean_query
from repro.db.reductions import pp2dnf_to_database
from repro.workloads import academic


def part1_ranking() -> None:
    database = academic.generate_database(seed=7, scale=0.8)
    name, query = [entry for entry in academic.queries()
                   if entry[0] == "influential_authors"][0]
    print(f"Part 1 -- ranking facts for query {name!r}: {query}")
    rankings = rank_facts(query, database, epsilon=0.1)
    for answer, ranked in rankings[:2]:
        print(f"  Answer {answer}:")
        for fact, entry in ranked[:5]:
            print(f"    {fact}  interval [{entry.lower}, {entry.upper}]")
    print()


def part2_dichotomy() -> None:
    graph = BipartiteGraph.from_edges(
        [(1, 10), (1, 11), (2, 10), (3, 11), (3, 12)])
    function = graph_to_pp2dnf(graph)
    construction = pp2dnf_to_database(function)
    query = construction.query
    lineage = lineage_of_boolean_query(query, construction.database,
                                       domain="database")

    print(f"Part 2 -- the hardness construction for {query} "
          f"({classify_query(query)})")
    print(f"  bipartite graph: {sorted(graph.edges)}")
    print(f"  #BIS (independent sets)          : {graph.count_independent_sets()}")
    print(f"  #NSat of the PP2DNF function     : {function.count_non_satisfying()}")
    print(f"  non-models of the query lineage  : {count_non_models(lineage)}")
    print()
    print("The three counts coincide: ranking facts of Q_nh exactly would let us")
    print("count independent sets in bipartite graphs, which is why ranking for")
    print("non-hierarchical queries is intractable (Theorem 17).")


def main() -> None:
    part1_ranking()
    part2_dichotomy()


if __name__ == "__main__":
    main()
