"""Quickstart: attribute the answer of a small join query to its facts.

Builds the tiny database of the paper's running example (Example 6), asks the
Boolean query ``Q() :- R(X,Y,Z), S(X,Y,V), T(X,U)``, and prints the Banzhaf
value of every endogenous fact -- exactly, with the anytime approximation,
and with Shapley values for comparison.

Run with::

    python examples/quickstart.py
"""

from repro import Database, attribute_facts, parse_query


def build_database() -> Database:
    database = Database()
    database.add_fact("R", (1, 2, 3))
    database.add_fact("S", (1, 2, 4))
    database.add_fact("S", (1, 2, 5))
    database.add_fact("T", (1, 6))
    return database


def main() -> None:
    database = build_database()
    query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")

    print("Query:", query)
    print("Database facts:", ", ".join(str(f) for f in database.endogenous_facts()))
    print()

    for method in ("exact", "approximate", "shapley"):
        print(f"--- {method} attribution ---")
        for result in attribute_facts(query, database, method=method,
                                      epsilon=0.1):
            for attribution in result.attributions:
                print(f"  {attribution}")
        print()

    print("The R and T facts participate in every explanation of the answer,")
    print("so their Banzhaf values dominate those of the two alternative S facts.")


if __name__ == "__main__":
    main()
