"""Quickstart: attribute the answer of a small join query to its facts.

Builds the tiny database of the paper's running example (Example 6), asks the
Boolean query ``Q() :- R(X,Y,Z), S(X,Y,V), T(X,U)``, and prints the Banzhaf
value of every endogenous fact -- exactly, with the anytime approximation,
and with Shapley values for comparison.  Then demonstrates the warm-start
flow: persist the result cache with one engine, start a "new process"
(a fresh engine over the same store directory), and serve the same query
without recomputing anything.

Run with::

    python examples/quickstart.py
"""

import tempfile

from repro import (
    Database,
    DiskStore,
    Engine,
    EngineConfig,
    attribute_facts,
    parse_query,
)


def build_database() -> Database:
    database = Database()
    database.add_fact("R", (1, 2, 3))
    database.add_fact("S", (1, 2, 4))
    database.add_fact("S", (1, 2, 5))
    database.add_fact("T", (1, 6))
    return database


def main() -> None:
    database = build_database()
    query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")

    print("Query:", query)
    print("Database facts:", ", ".join(str(f) for f in database.endogenous_facts()))
    print()

    for method in ("exact", "approximate", "shapley"):
        print(f"--- {method} attribution ---")
        for result in attribute_facts(query, database, method=method,
                                      epsilon=0.1):
            for attribution in result.attributions:
                print(f"  {attribution}")
        print()

    print("The R and T facts participate in every explanation of the answer,")
    print("so their Banzhaf values dominate those of the two alternative S facts.")
    print()
    warm_start_flow(database, query)


def warm_start_flow(database: Database, query) -> None:
    """Persist the cache in one engine, warm-start a fresh one from disk.

    The CLI equivalent is ``repro cache save --store DIR ...`` followed by
    ``repro serve --store DIR --warm-start ...``.
    """
    print("--- warm-start flow (persistent cache tier) ---")
    store_dir = tempfile.mkdtemp(prefix="repro-cache-")

    cold = Engine(EngineConfig(method="exact", store=DiskStore(store_dir)))
    cold_results = cold.attribute(query, database)
    print(f"cold engine: computed {cold.stats.compilations} lineage(s), "
          f"persisted to {store_dir}")

    # A brand new engine (think: the next process after a restart) with a
    # fresh handle on the same store directory.
    warm = Engine(EngineConfig(method="exact", store=DiskStore(store_dir)))
    warm_results = warm.attribute(query, database)
    assert warm_results == cold_results, "warm values must be bit-identical"
    print(f"warm engine: computed {warm.stats.compilations} lineage(s), "
          f"served {warm.stats.store_hits} from the disk store -- "
          "identical Fractions, no recomputation")


if __name__ == "__main__":
    main()
