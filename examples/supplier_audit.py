"""Auditing a TPC-H-style supply chain: which rows drive an answer?

Uses the synthetic TPC-H workload to answer "which suppliers ship brass
parts" and, for each supplier in the answer, ranks the underlying facts
(supplier, line items, parts) by Banzhaf value.  It then contrasts the exact
ExaBan values with the AdaBan(0.1) intervals and with the Monte Carlo
baseline to show the accuracy difference the paper's Table 7 quantifies.

Run with::

    python examples/supplier_audit.py
"""

from repro.baselines.monte_carlo import monte_carlo_banzhaf_all
from repro.core.banzhaf import banzhaf_exact
from repro.core.adaban import adaban_all
from repro.db.lineage import lineage_of_answers
from repro.workloads import tpch


def main() -> None:
    database = tpch.generate_database(seed=3, scale=1.0)
    name, query = [entry for entry in tpch.queries()
                   if entry[0] == "brass_part_suppliers"][0]
    print(f"Query {name!r}: {query}")
    print(f"Database: {database}")
    print()

    answers = lineage_of_answers(query, database)
    for answer in answers[:3]:
        lineage = answer.lineage
        exact = banzhaf_exact(lineage)
        approx = adaban_all(lineage, epsilon=0.1)
        sampled = monte_carlo_banzhaf_all(lineage)

        print(f"Supplier {answer.values[0]}  "
              f"({len(lineage.variables)} facts, {lineage.num_clauses()} explanations)")
        ordered = sorted(exact, key=lambda v: (-exact[v], v))
        for variable in ordered[:4]:
            fact = database.fact_of(variable)
            interval = approx[variable].interval
            print(f"  {fact}")
            print(f"    exact Banzhaf   : {exact[variable]}")
            print(f"    AdaBan interval : [{interval.lower}, {interval.upper}]")
            print(f"    MC estimate     : {float(sampled[variable].estimate):.2f}")
        print()

    print("The AdaBan intervals always contain the exact value; the Monte Carlo")
    print("estimate carries no such guarantee and visibly drifts on small lineages.")


if __name__ == "__main__":
    main()
