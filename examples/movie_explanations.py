"""Explaining movie-query answers on the synthetic IMDB workload.

Generates the IMDB-like database, runs the "actors in recent movies" query,
and for each of a few answers prints the top-3 facts by Banzhaf value
(computed with IchiBan) together with the hierarchical/non-hierarchical
classification of the query -- the property that governs tractability in the
paper's dichotomy.

Run with::

    python examples/movie_explanations.py
"""

from repro.core.attribution import topk_facts
from repro.db.hierarchy import classify_query
from repro.workloads import imdb


def main() -> None:
    database = imdb.generate_database(seed=11, scale=0.8)
    name, query = [entry for entry in imdb.queries()
                   if entry[0] == "actors_in_recent_movies"][0]
    disjuncts = getattr(query, "disjuncts", (query,))
    classification = ", ".join(classify_query(q) for q in disjuncts)

    print(f"Query {name!r}: {query}")
    print(f"Structure: {classification}")
    print(f"Database: {database}")
    print()

    results = topk_facts(query, database, k=3, epsilon=0.1)
    for answer, ranked in results[:5]:
        print(f"Answer {answer}:")
        for fact, entry in ranked:
            print(f"  {fact}  Banzhaf in [{entry.lower}, {entry.upper}]"
                  f"  (estimate {float(entry.estimate):.1f})")
        print()

    print("Each answer's top facts are the movie/cast rows that appear in the")
    print("largest number of otherwise-failing explanations of that answer.")


if __name__ == "__main__":
    main()
