"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where the
``wheel`` package (required by the PEP 517 editable-install path) is not
available; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
